//! Typed simulation counters.
//!
//! The simulator bumps several counters per event; the string-keyed
//! [`Counters`](ipfs_mon_simnet::metrics::Counters) map paid a `String`
//! allocation and a `BTreeMap` walk for each of those bumps. [`SimCounter`]
//! enumerates every counter the network simulation emits so the hot path can
//! index a fixed array instead; [`CounterId::name`] preserves the exact
//! report keys, so `RunReport` output is byte-for-byte unchanged.

use ipfs_mon_simnet::metrics::CounterId;

macro_rules! sim_counters {
    ($($(#[$meta:meta])* $variant:ident => $name:literal,)*) => {
        /// Every counter the network simulation emits. The `name()` of each
        /// variant is the key the corresponding string-keyed counter always
        /// used in reports.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum SimCounter {
            $($(#[$meta])* $variant,)*
        }

        impl CounterId for SimCounter {
            const ALL: &'static [Self] = &[$(Self::$variant,)*];

            fn index(self) -> usize {
                self as usize
            }

            fn name(self) -> &'static str {
                match self {
                    $(Self::$variant => $name,)*
                }
            }
        }
    };
}

sim_counters! {
    /// A node came online.
    NodeOnlineEvents => "node_online_events",
    /// A node went offline.
    NodeOfflineEvents => "node_offline_events",
    /// A wantlist entry was recorded by a monitor.
    MonitorEntriesRecorded => "monitor_entries_recorded",
    /// A user request arrived while its node was offline.
    RequestsWhileOffline => "requests_while_offline",
    /// Total user requests processed.
    RequestsTotal => "requests_total",
    /// Requests answered from the local block store.
    RequestsCacheHit => "requests_cache_hit",
    /// Requests for content that was already being fetched.
    RequestsAlreadyPending => "requests_already_pending",
    /// Want broadcasts sent to connected monitors.
    Broadcasts => "broadcasts",
    /// Wants that timed out unresolved.
    WantsTimedOut => "wants_timed_out",
    /// 30 s re-broadcasts of unresolved wants.
    Rebroadcasts => "rebroadcasts",
    /// Retrievals served by a direct overlay neighbour.
    ResolvedViaNeighbour => "resolved_via_neighbour",
    /// Retrievals that needed a DHT provider lookup.
    ResolvedViaDht => "resolved_via_dht",
    /// Retrievals served by a monitor acting as DHT provider (probing).
    ResolvedViaMonitorProvider => "resolved_via_monitor_provider",
    /// CANCEL entries broadcast after successful retrievals.
    Cancels => "cancels",
    /// HTTP requests arriving at gateway operators.
    GatewayHttpRequests => "gateway_http_requests",
    /// HTTP requests to operators whose HTTP side is broken.
    GatewayHttpFailed => "gateway_http_failed",
    /// HTTP requests dropped because no operator node was online.
    GatewayHttpNoNodeOnline => "gateway_http_no_node_online",
    /// Gateway HTTP cache hits (no Bitswap traffic).
    GatewayCacheHits => "gateway_cache_hits",
    /// Gateway HTTP cache revalidations (brief Bitswap want + cancel).
    GatewayCacheRevalidations => "gateway_cache_revalidations",
    /// Gateway HTTP cache misses (full Bitswap retrieval).
    GatewayCacheMisses => "gateway_cache_misses",
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipfs_mon_simnet::metrics::TypedCounters;

    #[test]
    fn names_are_unique_and_indices_dense() {
        let mut seen = std::collections::HashSet::new();
        for (expected, counter) in SimCounter::ALL.iter().enumerate() {
            assert_eq!(counter.index(), expected, "dense index order");
            assert!(seen.insert(counter.name()), "duplicate {}", counter.name());
        }
    }

    #[test]
    fn conversion_keeps_report_keys() {
        let mut typed: TypedCounters<SimCounter> = TypedCounters::new();
        typed.incr(SimCounter::Broadcasts);
        typed.add(SimCounter::RequestsTotal, 3);
        let counters = typed.to_counters();
        assert_eq!(counters.get("broadcasts"), 1);
        assert_eq!(counters.get("requests_total"), 3);
        assert_eq!(counters.get("cancels"), 0);
    }
}
