//! Runtime-mutable simulation state: per-node flags and caches, the
//! link/provider bit matrices, and the flat pending-want slab.
//!
//! Everything in this module changes while a run executes, in contrast to the
//! scenario-immutable [`ScenarioCore`](super::core::ScenarioCore). The
//! structures are deliberately flat — plain vectors indexed by node/content —
//! so the handler hot path never chases `HashMap` buckets:
//!
//! * [`BitMatrix`] — one bit per (row, column) pair in `stride` consecutive
//!   words per row; backs both the node↔monitor link matrix and the
//!   per-content monitor-provider masks,
//! * [`ProviderIndex`] — sorted flat provider lists per content item plus a
//!   monitor bitmask, replacing the seed's `Vec<HashSet<ProviderRef>>`,
//! * [`PendingSlab`] — all outstanding wants of all nodes in one entry pool
//!   threaded into intrusive per-node lists, replacing one
//!   `HashMap<usize, SimTime>` per node.

use crate::gateway::GatewayCache;
use ipfs_mon_blockstore::Blockstore;
use ipfs_mon_simnet::time::SimTime;

/// Internal per-node runtime state. Identity (peer ID, address, country) is
/// scenario-immutable and lives in the shared
/// [`ScenarioCore`](super::core::ScenarioCore); observation-side state (which
/// monitors the node is linked to) lives with the observation executor.
#[derive(Debug)]
pub(super) struct NodeState {
    pub(super) online: bool,
    pub(super) blockstore: Blockstore,
    pub(super) gateway_cache: Option<GatewayCache>,
}

/// A dense bit matrix: row `r`'s bits live in `stride` consecutive words.
/// Replaces the seed's per-node `Vec<bool>` (one heap allocation per node and
/// a byte per flag) with cache-friendly words-per-row in the common
/// ≤128-column case.
#[derive(Debug, Clone)]
pub(super) struct BitMatrix {
    words: Vec<u64>,
    stride: usize,
}

impl BitMatrix {
    pub(super) fn new(rows: usize, cols: usize) -> Self {
        let stride = cols.div_ceil(64).max(1);
        Self {
            words: vec![0; rows * stride],
            stride,
        }
    }

    pub(super) fn stride(&self) -> usize {
        self.stride
    }

    #[inline]
    pub(super) fn test(&self, row: usize, col: usize) -> bool {
        self.words[row * self.stride + col / 64] & (1 << (col % 64)) != 0
    }

    #[inline]
    pub(super) fn set(&mut self, row: usize, col: usize) {
        self.words[row * self.stride + col / 64] |= 1 << (col % 64);
    }

    /// One 64-column word of a row.
    #[inline]
    pub(super) fn word(&self, row: usize, word: usize) -> u64 {
        self.words[row * self.stride + word]
    }

    pub(super) fn clear_row(&mut self, row: usize) {
        let base = row * self.stride;
        self.words[base..base + self.stride].fill(0);
    }

    /// Appends an all-zero row.
    pub(super) fn push_row(&mut self) {
        self.words.resize(self.words.len() + self.stride, 0);
    }

    /// The lowest set column of a row, if any.
    pub(super) fn first_set(&self, row: usize) -> Option<usize> {
        let base = row * self.stride;
        self.words[base..base + self.stride]
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)
    }
}

/// Iterates the set bit positions of one bit-matrix word.
pub(super) fn set_bits(mut word: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if word == 0 {
            None
        } else {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            Some(bit)
        }
    })
}

/// Who provides each content item: a sorted flat list of provider *nodes*
/// plus a bitmask of monitor providers per content index.
///
/// The seed kept a `HashSet<ProviderRef>` per content item; `resolve` then
/// paid a bucket walk per provider on every (re)broadcast of popular content.
/// Here the node scan is a linear pass over a sorted `Vec<u32>` and the
/// monitor-provider pick is a trailing-zeros scan — and, unlike `HashSet`
/// iteration order, "first monitor provider" is well defined (lowest monitor
/// index).
#[derive(Debug, Clone)]
pub(super) struct ProviderIndex {
    node_lists: Vec<Vec<u32>>,
    monitor_masks: BitMatrix,
}

impl ProviderIndex {
    pub(super) fn new(monitors: usize) -> Self {
        Self {
            node_lists: Vec::new(),
            monitor_masks: BitMatrix::new(0, monitors),
        }
    }

    /// Appends a content item with the given initial provider nodes.
    pub(super) fn push_content(&mut self, initial: &[usize]) {
        let mut list: Vec<u32> = initial.iter().map(|&i| i as u32).collect();
        list.sort_unstable();
        list.dedup();
        self.node_lists.push(list);
        self.monitor_masks.push_row();
    }

    /// Registers `node` as a provider for `content` (idempotent).
    pub(super) fn insert_node(&mut self, content: usize, node: usize) {
        let list = &mut self.node_lists[content];
        if let Err(pos) = list.binary_search(&(node as u32)) {
            list.insert(pos, node as u32);
        }
    }

    /// Registers `monitor` as a provider for `content` (idempotent).
    pub(super) fn insert_monitor(&mut self, content: usize, monitor: usize) {
        self.monitor_masks.set(content, monitor);
    }

    /// The provider nodes of `content`, sorted by node index.
    #[inline]
    pub(super) fn node_providers(&self, content: usize) -> &[u32] {
        &self.node_lists[content]
    }

    /// The lowest-index monitor provider of `content`, if any.
    #[inline]
    pub(super) fn first_monitor(&self, content: usize) -> Option<usize> {
        self.monitor_masks.first_set(content)
    }
}

const NIL: u32 = u32::MAX;

/// All outstanding wants of all nodes in one slab: entries are pooled in a
/// single vector (with an intrusive free list) and threaded into one singly
/// linked list per node. Replaces a `HashMap<usize, SimTime>` per node — the
/// per-node list length is the node's *concurrent* want count, which is tiny,
/// so a linear walk beats hashing and the slab never allocates after warm-up.
#[derive(Debug, Clone)]
pub(super) struct PendingSlab {
    entries: Vec<SlabEntry>,
    heads: Vec<u32>,
    free: u32,
}

#[derive(Debug, Clone)]
struct SlabEntry {
    content: u32,
    started: SimTime,
    next: u32,
}

impl PendingSlab {
    pub(super) fn new(nodes: usize) -> Self {
        Self {
            entries: Vec::new(),
            heads: vec![NIL; nodes],
            free: NIL,
        }
    }

    /// When the outstanding want of `node` for `content` started, if any.
    pub(super) fn get(&self, node: usize, content: usize) -> Option<SimTime> {
        let mut cursor = self.heads[node];
        while cursor != NIL {
            let entry = &self.entries[cursor as usize];
            if entry.content == content as u32 {
                return Some(entry.started);
            }
            cursor = entry.next;
        }
        None
    }

    /// Records a new outstanding want. The caller checks for duplicates via
    /// [`Self::get`] first (the handler returns early on already-pending).
    pub(super) fn insert(&mut self, node: usize, content: usize, started: SimTime) {
        debug_assert!(self.get(node, content).is_none(), "want already pending");
        let entry = SlabEntry {
            content: content as u32,
            started,
            next: self.heads[node],
        };
        let slot = if self.free != NIL {
            let slot = self.free;
            self.free = self.entries[slot as usize].next;
            self.entries[slot as usize] = entry;
            slot
        } else {
            let slot = u32::try_from(self.entries.len()).expect("pending slab overflow");
            self.entries.push(entry);
            slot
        };
        self.heads[node] = slot;
    }

    /// Removes the outstanding want of `node` for `content`, returning when
    /// it started.
    pub(super) fn remove(&mut self, node: usize, content: usize) -> Option<SimTime> {
        let mut prev = NIL;
        let mut cursor = self.heads[node];
        while cursor != NIL {
            let entry = &self.entries[cursor as usize];
            if entry.content == content as u32 {
                let started = entry.started;
                let next = entry.next;
                if prev == NIL {
                    self.heads[node] = next;
                } else {
                    self.entries[prev as usize].next = next;
                }
                self.entries[cursor as usize].next = self.free;
                self.free = cursor;
                return Some(started);
            }
            prev = cursor;
            cursor = entry.next;
        }
        None
    }

    /// Drops every outstanding want of `node` (it went offline).
    pub(super) fn clear_node(&mut self, node: usize) {
        let mut cursor = self.heads[node];
        self.heads[node] = NIL;
        while cursor != NIL {
            let next = self.entries[cursor as usize].next;
            self.entries[cursor as usize].next = self.free;
            self.free = cursor;
            cursor = next;
        }
    }

    /// Grows the slab to cover `nodes` nodes (content can be added at
    /// runtime; nodes cannot shrink).
    pub(super) fn ensure_nodes(&mut self, nodes: usize) {
        if self.heads.len() < nodes {
            self.heads.resize(nodes, NIL);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_matrix_set_test_clear() {
        let mut m = BitMatrix::new(3, 130);
        assert_eq!(m.stride(), 3);
        assert!(!m.test(1, 129));
        m.set(1, 129);
        m.set(1, 0);
        assert!(m.test(1, 129) && m.test(1, 0));
        assert!(!m.test(0, 0) && !m.test(2, 129));
        assert_eq!(m.first_set(1), Some(0));
        m.clear_row(1);
        assert!(!m.test(1, 129) && !m.test(1, 0));
        assert_eq!(m.first_set(1), None);
    }

    #[test]
    fn bit_matrix_rows_grow() {
        let mut m = BitMatrix::new(0, 2);
        m.push_row();
        m.push_row();
        m.set(1, 1);
        assert_eq!(m.first_set(0), None);
        assert_eq!(m.first_set(1), Some(1));
    }

    #[test]
    fn provider_index_sorts_and_dedupes() {
        let mut p = ProviderIndex::new(8);
        p.push_content(&[5, 1, 5, 3]);
        assert_eq!(p.node_providers(0), &[1, 3, 5]);
        p.insert_node(0, 3);
        p.insert_node(0, 2);
        assert_eq!(p.node_providers(0), &[1, 2, 3, 5]);
        assert_eq!(p.first_monitor(0), None);
        p.insert_monitor(0, 6);
        p.insert_monitor(0, 2);
        assert_eq!(p.first_monitor(0), Some(2));
    }

    #[test]
    fn pending_slab_roundtrip() {
        let mut slab = PendingSlab::new(3);
        let t = SimTime::from_secs;
        slab.insert(0, 10, t(1));
        slab.insert(0, 11, t(2));
        slab.insert(2, 10, t(3));
        assert_eq!(slab.get(0, 10), Some(t(1)));
        assert_eq!(slab.get(0, 11), Some(t(2)));
        assert_eq!(slab.get(1, 10), None);
        assert_eq!(slab.get(2, 10), Some(t(3)));
        assert_eq!(slab.remove(0, 10), Some(t(1)));
        assert_eq!(slab.remove(0, 10), None);
        assert_eq!(slab.get(0, 11), Some(t(2)));
        slab.clear_node(0);
        assert_eq!(slab.get(0, 11), None);
        // Freed slots are recycled.
        slab.insert(1, 42, t(4));
        slab.insert(1, 43, t(5));
        assert_eq!(slab.entries.len(), 3);
        assert_eq!(slab.get(1, 42), Some(t(4)));
    }
}
