//! The scenario-immutable half of a [`Network`](super::Network).
//!
//! Everything a run never mutates is gathered here and shared via
//! `Arc<ScenarioCore>`: the [`Scenario`] itself, the derived node and monitor
//! identities, the DHT routing tables, the precomputed latency table, and the
//! base generator the per-node observation RNG streams derive from. Shard
//! workers in the sharded execution mode hold clones of the `Arc` and read
//! from it concurrently with the main thread; the serial modes read through
//! the same `Arc` so there is exactly one code path for lookups.
//!
//! The only writers are the pre-run scenario editors (`add_content`,
//! `register_monitor_provider` routing through the runtime provider index) —
//! they go through `Arc::make_mut`, which is a plain mutation while the run
//! has not started (reference count 1) and a copy-on-write afterwards.

use crate::spec::Scenario;
use ipfs_mon_kad::RoutingTable;
use ipfs_mon_simnet::region::LatencyTable;
use ipfs_mon_simnet::rng::SimRng;
use ipfs_mon_types::{Cid, Multiaddr, PeerId};
use std::collections::HashMap;

/// Scenario-immutable state shared by the main loop and every shard worker.
#[derive(Debug, Clone)]
pub(super) struct ScenarioCore {
    /// The scenario this network was built from. Content may be appended
    /// before a run starts (probe tooling); nothing is mutated during one.
    pub(super) scenario: Scenario,
    /// Peer ID of each node, derived from the experiment seed.
    pub(super) node_peers: Vec<PeerId>,
    /// Transport address of each node.
    pub(super) node_addrs: Vec<Multiaddr>,
    /// Peer ID of each monitor.
    pub(super) monitor_ids: Vec<PeerId>,
    /// Transport address of each monitor.
    pub(super) monitor_addrs: Vec<Multiaddr>,
    /// Root CID → content index (for cache probes and attack tooling).
    pub(super) root_index: HashMap<Cid, usize>,
    /// Routing tables of DHT-server nodes (node index → table), built once.
    pub(super) routing_tables: HashMap<usize, RoutingTable>,
    /// Peer ID → node index.
    pub(super) peer_index: HashMap<PeerId, usize>,
    /// Flat country×country latency table precomputed from
    /// `scenario.params.latency` — the handler hot path indexes it instead of
    /// re-deriving the country-pair mean per sample.
    pub(super) latency: LatencyTable,
    /// Base generator of the per-node observation streams; node `i` draws
    /// from `obs_base.derive_indexed("node", i)`, created lazily on first
    /// use. Kept here so the inline executor and every shard worker derive
    /// identical streams.
    pub(super) obs_base: SimRng,
}

impl ScenarioCore {
    /// Number of monitors.
    #[inline]
    pub(super) fn monitor_count(&self) -> usize {
        self.monitor_ids.len()
    }

    /// Number of (non-monitor) nodes.
    #[inline]
    pub(super) fn node_count(&self) -> usize {
        self.node_peers.len()
    }

    /// Root CID of content item `index`.
    #[inline]
    pub(super) fn content_root(&self, index: usize) -> &Cid {
        &self.scenario.content[index].dag.root
    }
}
