//! Sharded handler execution: the observation half of every event handler,
//! offloaded to per-node-shard worker threads.
//!
//! # Why handlers can be split
//!
//! Every handler of the simulator decomposes into
//!
//! * a **state half** — online flags, the pending-want slab, block stores,
//!   gateway caches, the provider index, counters and runtime-queue
//!   scheduling. These couple *across* nodes with zero lag (`online_count`,
//!   the shared provider sets, the single decision RNG stream), so they run
//!   on the main thread in exact serial event order, just as in every other
//!   execution mode; and
//! * an **observation half** — which monitors a node attaches to, the
//!   per-monitor latency draws of a want/cancel broadcast, and the resulting
//!   sink records. This state is *per node* (its monitor-link row, its
//!   observation RNG stream) and is never read back by the state half, so it
//!   can run on another thread — the only requirement is that each node's
//!   observation work executes in event order.
//!
//! The state loop therefore emits one [`ObsWork`] item per observable event,
//! tagged with the global event sequence number, and partitions items to
//! `shards` workers by `node % shards`. Each worker owns the link rows and
//! observation RNG streams of its nodes and turns work items into
//! [`SinkOp`]s. The main thread merges completed batches by sequence number —
//! a stable sort, since all ops of one event live on exactly one worker — and
//! applies them to the [`MonitorSink`]. The merged op order is identical to
//! the inline executor's, so the monitor trace is byte-identical to the
//! serial lazy mode by construction.
//!
//! # Conservative lookahead
//!
//! There is no feedback from the observation half into the state half, so
//! correctness does not bound how far the state loop may run ahead. The
//! *memory* bound is conservative instead: observation work is flushed to the
//! workers every [`OBS_FLUSH_THRESHOLD`] events and at every source-advance
//! window boundary, with one round of results outstanding (depth-1
//! pipelining), so the backlog never exceeds one window of events.

use super::core::ScenarioCore;
use super::state::{set_bits, BitMatrix};
use super::{
    source_shard_hint, source_state_peek, source_state_pop, BitswapObservation, MonitorSink,
    NetEvent, Network, RunReport, SourceState,
};
use crate::counters::SimCounter;
use ipfs_mon_bitswap::RequestType;
use ipfs_mon_obs as obs;
use ipfs_mon_simnet::metrics::TypedCounters;
use ipfs_mon_simnet::rng::SimRng;
use ipfs_mon_simnet::time::{SimDuration, SimTime};
use rand::Rng;
use std::sync::{mpsc, Arc};

/// Flush the observation backlog to the shard workers every this many items.
const OBS_FLUSH_THRESHOLD: usize = 8192;

/// One deferred observation task, emitted by a state-half handler. Carries
/// indices only — peers, addresses and CIDs are reconstructed from the shared
/// [`ScenarioCore`] when the resulting [`SinkOp`]s are applied.
#[derive(Debug, Clone, Copy)]
pub(super) enum ObsWork {
    /// The node came online: draw the per-monitor attach decisions.
    Online { node: usize, at: SimTime },
    /// The node went offline: disconnect it from its linked monitors.
    Offline { node: usize, at: SimTime },
    /// Broadcast one wantlist entry to every linked monitor.
    Broadcast {
        node: usize,
        rtype: RequestType,
        content: u32,
        at: SimTime,
    },
    /// Targeted `WANT_BLOCK` to one monitor (the monitor-provider path).
    Targeted {
        node: usize,
        monitor: usize,
        content: u32,
        at: SimTime,
    },
    /// Gateway revalidation: a want broadcast followed by a cancel broadcast
    /// a few hundred milliseconds later.
    RevalidateCancel {
        node: usize,
        rtype: RequestType,
        content: u32,
        at: SimTime,
    },
}

impl ObsWork {
    /// The node whose observation state this item acts on — the partition
    /// key of the sharded executor.
    #[inline]
    pub(super) fn node(&self) -> usize {
        match *self {
            ObsWork::Online { node, .. }
            | ObsWork::Offline { node, .. }
            | ObsWork::Broadcast { node, .. }
            | ObsWork::Targeted { node, .. }
            | ObsWork::RevalidateCancel { node, .. } => node,
        }
    }
}

/// One completed observation effect, ready to apply to the sink. Ops carry
/// indices and times only; [`apply_sink_op`] reconstructs the peer, address
/// and CID views from the shared core at apply time, keeping the worker
/// channels free of heap-backed payloads.
#[derive(Debug, Clone, Copy)]
pub(super) enum SinkOp {
    /// One wantlist entry arriving at a monitor.
    Record {
        monitor: usize,
        node: usize,
        rtype: RequestType,
        at: SimTime,
        content: u32,
    },
    /// A node connected to a monitor.
    Connected {
        monitor: usize,
        node: usize,
        at: SimTime,
    },
    /// A node disconnected from a monitor.
    Disconnected {
        monitor: usize,
        node: usize,
        at: SimTime,
    },
}

/// Shared context of one broadcast expansion (kept in a struct so the helper
/// stays within the argument-count lint while the RNG borrows separately).
struct BroadcastCtx<'a> {
    core: &'a ScenarioCore,
    links: &'a BitMatrix,
    local: usize,
    node: usize,
    seq: u64,
}

/// Expands one broadcast into per-monitor `Record` ops, drawing one latency
/// sample per linked monitor from the node's observation stream.
fn broadcast_ops(
    ctx: &BroadcastCtx<'_>,
    rng: &mut SimRng,
    rtype: RequestType,
    content: u32,
    at: SimTime,
    out: &mut Vec<(u64, SinkOp)>,
) {
    let country = ctx.core.scenario.nodes[ctx.node].country;
    for w in 0..ctx.links.stride() {
        for bit in set_bits(ctx.links.word(ctx.local, w)) {
            let m = w * 64 + bit;
            let latency =
                ctx.core
                    .latency
                    .sample(rng, country, ctx.core.scenario.monitors[m].country);
            out.push((
                ctx.seq,
                SinkOp::Record {
                    monitor: m,
                    node: ctx.node,
                    rtype,
                    at: at + latency,
                    content,
                },
            ));
        }
    }
}

/// The observation executor of one shard: owns the monitor-link rows and the
/// lazily derived observation RNG streams of the nodes with
/// `node % shards == offset`. The serial execution modes use a single
/// inline instance (`shards == 1`), so there is exactly one code path for
/// observation semantics.
#[derive(Debug)]
pub(super) struct ObsShard {
    core: Arc<ScenarioCore>,
    shards: usize,
    offset: usize,
    /// Monitor links of this shard's nodes, row-indexed by `node / shards`.
    links: BitMatrix,
    /// Per-node observation streams, derived on first use so untouched nodes
    /// cost nothing.
    rngs: Vec<Option<SimRng>>,
}

impl ObsShard {
    pub(super) fn new(core: Arc<ScenarioCore>, shards: usize, offset: usize) -> Self {
        let locals = core.node_count().div_ceil(shards.max(1));
        Self {
            links: BitMatrix::new(locals, core.monitor_count()),
            rngs: (0..locals).map(|_| None).collect(),
            core,
            shards: shards.max(1),
            offset,
        }
    }

    /// Swaps in a new core after a copy-on-write scenario edit
    /// (`add_content`), so the inline executor never reads a stale snapshot.
    pub(super) fn refresh_core(&mut self, core: Arc<ScenarioCore>) {
        self.core = core;
    }

    /// Executes one work item, appending the resulting sink ops (tagged with
    /// `seq`) to `out`. Items of one node must arrive in event order; that is
    /// the only ordering the executor relies on.
    pub(super) fn execute(&mut self, seq: u64, work: &ObsWork, out: &mut Vec<(u64, SinkOp)>) {
        let Self {
            core,
            shards,
            offset,
            links,
            rngs,
        } = self;
        let core: &ScenarioCore = core;
        let node = work.node();
        debug_assert_eq!(node % *shards, *offset, "work routed to the wrong shard");
        let local = node / *shards;
        let rng =
            rngs[local].get_or_insert_with(|| core.obs_base.derive_indexed("node", node as u64));
        match *work {
            ObsWork::Online { node, at } => {
                for m in 0..core.monitor_count() {
                    let p = core.scenario.monitors[m].attach_probability;
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        links.set(local, m);
                        out.push((
                            seq,
                            SinkOp::Connected {
                                monitor: m,
                                node,
                                at,
                            },
                        ));
                    }
                }
            }
            ObsWork::Offline { node, at } => {
                for w in 0..links.stride() {
                    for bit in set_bits(links.word(local, w)) {
                        out.push((
                            seq,
                            SinkOp::Disconnected {
                                monitor: w * 64 + bit,
                                node,
                                at,
                            },
                        ));
                    }
                }
                links.clear_row(local);
            }
            ObsWork::Broadcast {
                node,
                rtype,
                content,
                at,
            } => {
                let ctx = BroadcastCtx {
                    core,
                    links,
                    local,
                    node,
                    seq,
                };
                broadcast_ops(&ctx, rng, rtype, content, at, out);
            }
            ObsWork::Targeted {
                node,
                monitor,
                content,
                at,
            } => {
                // Latency is drawn before the link test, matching the order
                // the combined handler used.
                let country = core.scenario.nodes[node].country;
                let latency =
                    core.latency
                        .sample(rng, country, core.scenario.monitors[monitor].country);
                if !links.test(local, monitor) {
                    links.set(local, monitor);
                    out.push((seq, SinkOp::Connected { monitor, node, at }));
                }
                out.push((
                    seq,
                    SinkOp::Record {
                        monitor,
                        node,
                        rtype: RequestType::WantBlock,
                        at: at + latency,
                        content,
                    },
                ));
            }
            ObsWork::RevalidateCancel {
                node,
                rtype,
                content,
                at,
            } => {
                let ctx = BroadcastCtx {
                    core,
                    links,
                    local,
                    node,
                    seq,
                };
                broadcast_ops(&ctx, rng, rtype, content, at, out);
                let cancel_at = at + SimDuration::from_millis(rng.gen_range(200..1200));
                broadcast_ops(&ctx, rng, RequestType::Cancel, content, cancel_at, out);
            }
        }
    }
}

/// Applies one completed sink op: reconstructs the peer/address/CID view from
/// the shared core and forwards it to the sink. Both the inline drain and the
/// sharded merge go through this function, so the record format (and the
/// `MonitorEntriesRecorded` tally) cannot drift between modes.
pub(super) fn apply_sink_op<S: MonitorSink>(
    core: &ScenarioCore,
    counters: &mut TypedCounters<SimCounter>,
    op: &SinkOp,
    sink: &mut S,
) {
    match *op {
        SinkOp::Record {
            monitor,
            node,
            rtype,
            at,
            content,
        } => {
            sink.record(
                monitor,
                BitswapObservation {
                    timestamp: at,
                    peer: core.node_peers[node],
                    address: core.node_addrs[node],
                    request_type: rtype,
                    cid: core.content_root(content as usize).clone(),
                },
            );
            counters.incr(SimCounter::MonitorEntriesRecorded);
        }
        SinkOp::Connected { monitor, node, at } => {
            sink.peer_connected(monitor, core.node_peers[node], core.node_addrs[node], at);
        }
        SinkOp::Disconnected { monitor, node, at } => {
            sink.peer_disconnected(monitor, core.node_peers[node], at);
        }
    }
}

/// Partitions the pending observation backlog by owner shard and ships one
/// batch to every worker (empty batches included, so result rounds align).
fn dispatch_round(
    work_txs: &[mpsc::Sender<Vec<(u64, ObsWork)>>],
    pending: &mut Vec<(u64, ObsWork)>,
    cross_shard: obs::Counter,
) {
    let shards = work_txs.len();
    cross_shard.add(pending.len() as u64);
    let mut batches: Vec<Vec<(u64, ObsWork)>> = (0..shards).map(|_| Vec::new()).collect();
    for (seq, work) in pending.drain(..) {
        batches[work.node() % shards].push((seq, work));
    }
    for (tx, batch) in work_txs.iter().zip(batches) {
        tx.send(batch).expect("shard worker exited early");
    }
}

/// Receives one result round from every worker, merges by event sequence
/// (stable — each event's ops live on exactly one worker) and applies the ops
/// in order. The receive wait is the synchronization barrier of the mode and
/// is timed into `sim.barrier_wait_ns`.
fn collect_round<S: MonitorSink>(
    result_rxs: &[mpsc::Receiver<Vec<(u64, SinkOp)>>],
    merge: &mut Vec<(u64, SinkOp)>,
    barrier_hist: obs::Histogram,
    core: &ScenarioCore,
    counters: &mut TypedCounters<SimCounter>,
    sink: &mut S,
) {
    merge.clear();
    {
        let _wait = barrier_hist.timer();
        for rx in result_rxs {
            merge.extend(rx.recv().expect("shard worker dropped its result channel"));
        }
    }
    merge.sort_by_key(|&(seq, _)| seq);
    for (_, op) in merge.iter() {
        apply_sink_op(core, counters, op, sink);
    }
}

impl Network {
    /// The sharded-handlers event loop (see [`super::ExecOptions::sharded`]).
    ///
    /// Source advancement reuses the parallel-regions machinery — partitioned
    /// by [`source_shard_hint`] instead of round-robin where a source names
    /// its node — and the apply phase follows the serial loop's tie rule
    /// verbatim, so the *state* side is the serial lazy loop exactly. The
    /// observation half of each handler is shipped to `shard_handlers`
    /// persistent workers and merged back in event order (module docs).
    pub(super) fn run_sharded<S: MonitorSink>(&mut self, sink: &mut S) -> RunReport {
        /// Barrier spacing of the source-advance windows, matching the
        /// parallel-regions mode.
        const SHARD_WINDOW: SimDuration = SimDuration::from_hours(1);

        let shards = self.options.shard_handlers.max(1);
        let horizon_end = SimTime::ZERO + self.core.scenario.horizon;
        let regions = shards.min(self.sources.len()).max(1);
        let mut partitions: Vec<Vec<(u32, SourceState)>> =
            (0..regions).map(|_| Vec::new()).collect();
        for (rank, source) in std::mem::take(&mut self.sources).into_iter().enumerate() {
            let region = source_shard_hint(&source).map_or(rank % regions, |n| n % regions);
            partitions[region].push((rank as u32, source));
        }
        self.heads.clear();

        let mut events = 0u64;
        // The serial loop's instrumentation, plus the sharded-mode metrics
        // (per-shard work counts, barrier waits, cross-thread message count).
        let mut obs_events = obs::BatchedCounter::new(obs::counter!("sim.events"));
        let obs_pending = obs::gauge!("sim.pending");
        let dispatch_hist = obs::histogram!("sim.handler_dispatch_ns");
        let barrier_hist = obs::histogram!("sim.barrier_wait_ns");
        let cross_shard = obs::counter!("sim.cross_shard_msgs");

        let mut buffer: Vec<(SimTime, u32, NetEvent)> = Vec::new();
        let mut next = 0usize;
        let mut barrier = SimTime::ZERO;
        let mut merge: Vec<(u64, SinkOp)> = Vec::new();
        let mut in_flight = false;

        std::thread::scope(|scope| {
            let mut work_txs: Vec<mpsc::Sender<Vec<(u64, ObsWork)>>> = Vec::with_capacity(shards);
            let mut result_rxs: Vec<mpsc::Receiver<Vec<(u64, SinkOp)>>> =
                Vec::with_capacity(shards);
            for w in 0..shards {
                let (work_tx, work_rx) = mpsc::channel::<Vec<(u64, ObsWork)>>();
                let (result_tx, result_rx) = mpsc::channel::<Vec<(u64, SinkOp)>>();
                work_txs.push(work_tx);
                result_rxs.push(result_rx);
                let core = Arc::clone(&self.core);
                scope.spawn(move || {
                    let mut shard = ObsShard::new(core, shards, w);
                    // Dynamic metric name — the caching `counter!` macro is
                    // per call site and would alias the shards.
                    let shard_events = obs::counter(&format!("sim.shard_events.{w}"));
                    while let Ok(batch) = work_rx.recv() {
                        shard_events.add(batch.len() as u64);
                        let mut out = Vec::with_capacity(batch.len() * 2);
                        for (seq, work) in &batch {
                            shard.execute(*seq, work, &mut out);
                        }
                        if result_tx.send(out).is_err() {
                            break;
                        }
                    }
                });
            }

            loop {
                // Advance phase: refill the source buffer window by window.
                while next >= buffer.len() && barrier < horizon_end {
                    // Window boundary: bound the observation backlog to one
                    // window before running further ahead.
                    if !self.pending_obs.is_empty() {
                        if in_flight {
                            collect_round(
                                &result_rxs,
                                &mut merge,
                                barrier_hist,
                                &self.core,
                                &mut self.counters,
                                sink,
                            );
                        }
                        dispatch_round(&work_txs, &mut self.pending_obs, cross_shard);
                        in_flight = true;
                    }
                    barrier = (barrier + SHARD_WINDOW).min(horizon_end);
                    let deadline = barrier;
                    let scenario = &self.core.scenario;
                    let _advance_span = obs::histogram!("sim.region_advance_ns").timer();
                    let batches: Vec<Vec<(SimTime, u32, NetEvent)>> =
                        std::thread::scope(|advance| {
                            let handles: Vec<_> = partitions
                                .iter_mut()
                                .map(|partition| {
                                    advance.spawn(move || {
                                        let mut batch = Vec::new();
                                        for (rank, source) in partition.iter_mut() {
                                            while source_state_peek(source, scenario)
                                                .is_some_and(|t| t <= deadline)
                                            {
                                                let (at, event) =
                                                    source_state_pop(source, scenario)
                                                        .expect("peek implies a pending event");
                                                batch.push((at, *rank, event));
                                            }
                                        }
                                        batch.sort_by_key(|&(t, rank, _)| (t, rank));
                                        batch
                                    })
                                })
                                .collect();
                            handles
                                .into_iter()
                                .map(|handle| handle.join().expect("source worker panicked"))
                                .collect()
                        });
                    buffer.clear();
                    next = 0;
                    for batch in batches {
                        buffer.extend(batch);
                    }
                    buffer.sort_by_key(|&(t, rank, _)| (t, rank));
                    if buffer.is_empty() {
                        // Quiet window: jump to just before the earliest
                        // pending source event instead of spinning.
                        barrier = partitions
                            .iter()
                            .flatten()
                            .filter_map(|(_, source)| source_state_peek(source, scenario))
                            .min()
                            .map(|t| SimTime::from_millis(t.as_millis().saturating_sub(1)))
                            .unwrap_or(horizon_end)
                            .clamp(barrier, horizon_end);
                    }
                }

                let pending = self.queue.pending() + (buffer.len() - next);
                if pending > self.peak_pending {
                    self.peak_pending = pending;
                }
                if events & 4095 == 0 {
                    obs_pending.set(pending as u64);
                }
                // Apply phase: the serial loop's tie rule, verbatim.
                let (now, event) = match buffer.get(next) {
                    None => match self.queue.pop_until(horizon_end) {
                        Some(popped) => popped,
                        None => break,
                    },
                    Some(&(ts, _, _)) => {
                        let take_source = match self.queue.peek_time() {
                            Some(tq) => ts <= tq,
                            None => true,
                        };
                        if take_source {
                            let (at, _, event) = buffer[next];
                            next += 1;
                            self.queue.advance_to(at);
                            (at, event)
                        } else {
                            match self.queue.pop_until(horizon_end) {
                                Some(popped) => popped,
                                None => break,
                            }
                        }
                    }
                };
                events += 1;
                obs_events.incr();
                let _span = (events & 1023 == 0).then(|| dispatch_hist.timer());
                self.event_seq = events;
                self.handle_event(now, event);
                if self.pending_obs.len() >= OBS_FLUSH_THRESHOLD {
                    if in_flight {
                        collect_round(
                            &result_rxs,
                            &mut merge,
                            barrier_hist,
                            &self.core,
                            &mut self.counters,
                            sink,
                        );
                    }
                    dispatch_round(&work_txs, &mut self.pending_obs, cross_shard);
                    in_flight = true;
                }
            }

            // Drain: collect the outstanding round, flush the tail, then
            // close the work channels so the workers exit before the scope
            // joins them.
            if in_flight {
                collect_round(
                    &result_rxs,
                    &mut merge,
                    barrier_hist,
                    &self.core,
                    &mut self.counters,
                    sink,
                );
            }
            if !self.pending_obs.is_empty() {
                dispatch_round(&work_txs, &mut self.pending_obs, cross_shard);
                collect_round(
                    &result_rxs,
                    &mut merge,
                    barrier_hist,
                    &self.core,
                    &mut self.counters,
                    sink,
                );
            }
            drop(work_txs);
        });

        RunReport {
            counters: self.counters.to_counters(),
            events_processed: events,
            nodes_ever_online: self.ever_online_count,
            peak_pending: self.peak_pending,
        }
    }
}
