//! The network simulator: executes a [`Scenario`] and feeds monitors.
//!
//! # Simulation granularity
//!
//! The simulator operates at **request granularity**, not per-packet
//! granularity. For every user request it reproduces exactly the behaviour
//! that is *observable by passive monitors* and that drives the paper's
//! analyses:
//!
//! * the Bitswap want broadcast (typed `WANT_HAVE` or `WANT_BLOCK` according
//!   to the requester's client version) arriving at every monitor the
//!   requester is connected to, with realistic per-monitor latency offsets;
//! * 30 s re-broadcasts while the want stays unresolved;
//! * `CANCEL` entries once the block is obtained;
//! * caching (a repeated request for cached content generates no traffic) and
//!   re-providing (a successful downloader becomes a provider);
//! * gateway HTTP caches in front of gateway nodes (hits generate no Bitswap
//!   traffic, revalidations and misses do);
//! * monitors registering as DHT providers for probe CIDs and subsequently
//!   receiving targeted `WANT_BLOCK`s (the gateway-probing attack).
//!
//! What it deliberately does **not** do is deliver every broadcast to every
//! regular peer as an individual event: whether a neighbour or DHT provider
//! can serve a block is decided with a connectivity model instead. This keeps
//! multi-thousand-node, multi-week runs tractable while preserving the
//! monitor-visible message stream. The `ipfs-mon-bitswap` crate contains the
//! full per-message protocol engine, which is exercised by its own tests and
//! by the quickstart example.
//!
//! # Event loop
//!
//! By default the simulator runs **lazily**: churn schedules and the request
//! vectors feed the run through per-process cursors ([`ScheduleCursor`] per
//! node, one cursor per request vector, plus any external
//! [`EventSource`]-backed processes registered via [`Network::with_sources`]),
//! merged on demand by a small head-heap. Only *runtime* events
//! (re-broadcasts, retrieval completions, attack injections) live in the
//! scheduler — a hierarchical timer wheel — so the pending set scales with
//! concurrency, not with `population × horizon`. Timestamp ties between
//! sources are broken by source rank (node order, then user requests, then
//! gateway requests, then external sources) and source events at an instant
//! precede runtime events at the same instant, which reproduces bit for bit
//! the FIFO sequence order of the seed's fully materialized scheduler. The
//! materialized path (and the seed's binary-heap scheduler) remain available
//! through [`ExecOptions`] as an equivalence oracle and benchmark baseline.
//!
//! # Structure: scenario core, runtime state, observation half
//!
//! The simulator state is split into three layers:
//!
//! ```text
//!  Arc<ScenarioCore>      scenario, identities, routing tables, latency
//!  (core.rs, immutable)   table, observation RNG base — shared read-only
//!          │               with every shard worker
//!          ▼
//!  runtime state          online flags, block stores, gateway caches,
//!  (state.rs, mutable)    provider index, pending-want slab, counters,
//!          │               runtime queue — main thread only, serial order
//!          ▼
//!  observation half       monitor-link rows + per-node observation RNG
//!  (sharded.rs)           streams → sink records; inline (serial modes)
//!                          or on shard worker threads (sharded mode)
//! ```
//!
//! Every handler runs its *state half* on the main thread and emits
//! `ObsWork` items for its *observation half*. The serial modes execute
//! those inline after each event through a single-shard executor; the sixth
//! execution mode, [`ExecOptions::sharded`], ships them to persistent worker
//! threads and merges the results back in event order — byte-identical to
//! the serial lazy mode by construction (see the `sharded` module docs).

mod core;
mod sharded;
mod state;

use self::core::ScenarioCore;
use self::sharded::{apply_sink_op, ObsShard, ObsWork, SinkOp};
use self::state::{NodeState, PendingSlab, ProviderIndex};
use crate::counters::SimCounter;
use crate::gateway::{CacheOutcome, GatewayCache, GatewayCacheConfig};
use crate::spec::{ContentSpec, GatewayRequestEvent, RequestEvent, Scenario, WorkloadEvent};
use ipfs_mon_bitswap::{ProtocolVersion, RequestType};
use ipfs_mon_blockstore::{Blockstore, BlockstoreConfig};
use ipfs_mon_kad::{DhtView, RoutingTable};
use ipfs_mon_obs as obs;
use ipfs_mon_simnet::churn::{ChurnEvent, ScheduleCursor};
use ipfs_mon_simnet::metrics::{Counters, TypedCounters};
use ipfs_mon_simnet::rng::{NormalSampler, SimRng};
use ipfs_mon_simnet::scheduler::{BaselineScheduler, Scheduler};
use ipfs_mon_simnet::source::EventSource;
use ipfs_mon_simnet::time::{SimDuration, SimTime};
use ipfs_mon_types::{Cid, Country, Multiaddr, PeerId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// One Bitswap wantlist entry as received by a monitor: the raw material of
/// the paper's `(timestamp, node_ID, address, request_type, CID)` tuples.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitswapObservation {
    /// Arrival time at the monitor.
    pub timestamp: SimTime,
    /// Peer ID of the sender.
    pub peer: PeerId,
    /// Transport address of the sender.
    pub address: Multiaddr,
    /// Entry type (`WANT_HAVE`, `WANT_BLOCK` or `CANCEL`).
    pub request_type: RequestType,
    /// The CID the entry refers to.
    pub cid: Cid,
}

/// Receiver of everything the monitoring nodes observe. Implemented by the
/// trace collector in `ipfs-mon-core`.
pub trait MonitorSink {
    /// Called for every wantlist entry received by monitor `monitor`.
    fn record(&mut self, monitor: usize, observation: BitswapObservation);

    /// Called when a peer connects to monitor `monitor`.
    fn peer_connected(&mut self, monitor: usize, peer: PeerId, address: Multiaddr, at: SimTime) {
        let _ = (monitor, peer, address, at);
    }

    /// Called when a peer disconnects from monitor `monitor`.
    fn peer_disconnected(&mut self, monitor: usize, peer: PeerId, at: SimTime) {
        let _ = (monitor, peer, at);
    }
}

/// One recorded connection event: `(peer, address, connect time, disconnect
/// time if any)`.
pub type ConnectionEvent = (PeerId, Multiaddr, SimTime, Option<SimTime>);

/// A [`MonitorSink`] that keeps everything in memory. Useful for tests and
/// small experiments.
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    /// Observations per monitor index.
    pub observations: Vec<Vec<BitswapObservation>>,
    /// Connection events per monitor index.
    pub connections: Vec<Vec<ConnectionEvent>>,
}

impl RecordingSink {
    /// Creates a sink for `monitor_count` monitors.
    pub fn new(monitor_count: usize) -> Self {
        Self {
            observations: vec![Vec::new(); monitor_count],
            connections: vec![Vec::new(); monitor_count],
        }
    }

    /// Total number of recorded observations across monitors.
    pub fn total_observations(&self) -> usize {
        self.observations.iter().map(Vec::len).sum()
    }
}

impl MonitorSink for RecordingSink {
    fn record(&mut self, monitor: usize, observation: BitswapObservation) {
        self.observations[monitor].push(observation);
    }

    fn peer_connected(&mut self, monitor: usize, peer: PeerId, address: Multiaddr, at: SimTime) {
        self.connections[monitor].push((peer, address, at, None));
    }

    fn peer_disconnected(&mut self, monitor: usize, peer: PeerId, at: SimTime) {
        if let Some(entry) = self.connections[monitor]
            .iter_mut()
            .rev()
            .find(|(p, _, _, end)| *p == peer && end.is_none())
        {
            entry.3 = Some(at);
        }
    }
}

/// How a retrieval was (or was not) resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    Neighbour,
    Dht,
    MonitorProvider(usize),
    Unresolved,
}

/// Events driving the simulation.
#[derive(Debug, Clone, Copy)]
enum NetEvent {
    NodeOnline(usize),
    NodeOffline(usize),
    UserRequest {
        node: usize,
        content: usize,
    },
    GatewayHttp {
        operator: usize,
        content: usize,
    },
    Rebroadcast {
        node: usize,
        content: usize,
    },
    RetrievalComplete {
        node: usize,
        content: usize,
        resolution: Resolution,
    },
}

/// The scheduler behind a run: the timer wheel by default, or the seed's
/// binary-heap implementation for baseline measurements.
#[derive(Debug)]
enum Queue {
    Wheel(Scheduler<NetEvent>),
    Baseline(BaselineScheduler<NetEvent>),
}

impl Queue {
    fn schedule_at(&mut self, at: SimTime, event: NetEvent) {
        match self {
            Queue::Wheel(q) => {
                q.schedule_at(at, event);
            }
            Queue::Baseline(q) => {
                q.schedule_at(at, event);
            }
        }
    }

    fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, NetEvent)> {
        match self {
            Queue::Wheel(q) => q.pop_until(deadline),
            Queue::Baseline(q) => q.pop_until(deadline),
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        match self {
            Queue::Wheel(q) => q.peek_time(),
            Queue::Baseline(q) => q.peek_time(),
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        match self {
            Queue::Wheel(q) => q.advance_to(t),
            Queue::Baseline(q) => q.advance_to(t),
        }
    }

    fn pending(&self) -> usize {
        match self {
            Queue::Wheel(q) => q.pending(),
            Queue::Baseline(q) => q.pending(),
        }
    }
}

/// How a [`Network`] executes its scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Pre-schedule every churn transition and request into the event queue
    /// at construction (the seed behaviour, O(population × horizon) memory)
    /// instead of pulling them lazily from per-process sources.
    pub materialized: bool,
    /// Drive the run with the seed's binary-heap scheduler instead of the
    /// timer wheel. Delivery order is identical; only cost differs. Requires
    /// `materialized` (the lazy merge loop peeks the queue per event, which
    /// is O(pending) on the seed scheduler).
    pub baseline_scheduler: bool,
    /// Advance the lazy event-source processes on this many worker threads,
    /// partitioned into independent regions that run ahead of the main loop
    /// between monitor-visible synchronization barriers (fixed-width time
    /// windows). `0` or `1` keeps source advancement on the main thread.
    /// Requires lazy execution; the merged event order — and therefore the
    /// monitor trace — is bit-identical to the serial lazy mode (the
    /// per-process event streams do not depend on simulation state, so
    /// *when* they are pulled cannot change *what* they yield; the barrier
    /// merge re-establishes the exact `(time, source rank)` order).
    pub parallel_regions: usize,
    /// Ship the observation half of every handler (per-monitor attach draws,
    /// broadcast latency samples, sink records) to this many persistent shard
    /// worker threads, partitioned by node index. `0` keeps observation
    /// execution inline on the main thread. Requires lazy sourcing; the
    /// merged sink-op order — and therefore the monitor trace — is
    /// bit-identical to the serial lazy mode (the observation half never
    /// feeds back into handler state, and results are re-merged in global
    /// event order at every flush barrier).
    pub shard_handlers: usize,
    /// Draw standard normals (latency jitter) with the table-driven ziggurat
    /// sampler instead of the seed's Box–Muller transform. Roughly 2× fewer
    /// transcendental calls per latency sample; the *distribution* is
    /// identical but the concrete draw sequence differs, so this is opt-in
    /// and off by default. All execution modes remain mutually
    /// digest-identical under either sampler.
    pub fast_rng: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self::lazy()
    }
}

impl ExecOptions {
    /// Lazy event sourcing on the timer wheel — the default.
    pub fn lazy() -> Self {
        Self {
            materialized: false,
            baseline_scheduler: false,
            parallel_regions: 0,
            shard_handlers: 0,
            fast_rng: false,
        }
    }

    /// Lazy event sourcing with the source processes partitioned into
    /// `regions` independent regions advanced on worker threads. Digest-
    /// identical to [`ExecOptions::lazy`]; see
    /// [`ExecOptions::parallel_regions`].
    pub fn lazy_parallel(regions: usize) -> Self {
        Self {
            parallel_regions: regions,
            ..Self::lazy()
        }
    }

    /// The sharded core: lazy sourcing with source advancement *and* the
    /// observation half of every handler distributed over `shards` worker
    /// threads (conservative-lookahead flush windows, deterministic merge).
    /// Digest-identical to [`ExecOptions::lazy`]; see
    /// [`ExecOptions::shard_handlers`].
    pub fn sharded(shards: usize) -> Self {
        Self {
            parallel_regions: shards,
            shard_handlers: shards.max(1),
            ..Self::lazy()
        }
    }

    /// The seed configuration: everything materialized up front, delivered
    /// from the binary-heap scheduler. Used as the benchmark baseline and as
    /// the equivalence oracle in tests.
    pub fn seed_baseline() -> Self {
        Self {
            materialized: true,
            baseline_scheduler: true,
            ..Self::lazy()
        }
    }

    /// Materialized scheduling on the timer wheel (isolates the scheduler
    /// swap from the lazy-sourcing change).
    pub fn materialized_wheel() -> Self {
        Self {
            materialized: true,
            ..Self::lazy()
        }
    }

    /// Enables the ziggurat normal sampler (see [`ExecOptions::fast_rng`]).
    pub fn with_fast_rng(mut self) -> Self {
        self.fast_rng = true;
        self
    }
}

/// An external, boxed workload source (see [`Network::with_sources`]).
/// `Send` so that [`ExecOptions::parallel_regions`] can move a region's
/// sources onto a worker thread.
pub type DynWorkloadSource = Box<dyn EventSource<Event = WorkloadEvent> + Send>;

/// One lazy initial-event process of a run. Ranks (vector order) break
/// timestamp ties: churn sources come first in node order, then the two
/// request vectors, then external sources — matching the order the
/// materialized path assigned sequence numbers in.
enum SourceState {
    /// Churn transitions of one node, read straight off its schedule.
    Churn { node: usize, cursor: ScheduleCursor },
    /// Cursor over `scenario.requests`; `order` holds a stable-by-time
    /// permutation when the vector is not already time-sorted.
    Requests {
        cursor: usize,
        order: Option<Box<[u32]>>,
    },
    /// Cursor over `scenario.gateway_requests`.
    GatewayRequests {
        cursor: usize,
        order: Option<Box<[u32]>>,
    },
    /// An external pull-based process (lazy workload generation).
    External(DynWorkloadSource),
}

/// Summary of a completed run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Event and outcome counters.
    pub counters: Counters,
    /// Number of simulation events processed.
    pub events_processed: u64,
    /// Number of nodes that were online at least once.
    pub nodes_ever_online: usize,
    /// Peak number of pending events observed during the run: scheduled
    /// runtime events plus one head per live event source. In lazy mode this
    /// tracks concurrency (O(active sources)); in materialized mode it is
    /// O(population × horizon), the seed behaviour.
    pub peak_pending: usize,
}

/// The executable network simulation built from a [`Scenario`].
pub struct Network {
    /// Scenario-immutable state, shared with shard workers (see `core.rs`).
    core: Arc<ScenarioCore>,
    nodes: Vec<NodeState>,
    /// Providers per content index (flat sorted node lists + monitor masks).
    providers: ProviderIndex,
    /// Outstanding wants of all nodes, in one slab.
    pending: PendingSlab,
    queue: Queue,
    /// Lazy initial-event processes, merged through `heads`.
    sources: Vec<SourceState>,
    /// Next event time per live source, keyed `(time, rank)` — min-heap via
    /// `Reverse`. Rank ties reproduce materialized FIFO order.
    heads: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// The decision stream: resolution draws and fetch delays only.
    rng: SimRng,
    counters: TypedCounters<SimCounter>,
    ever_online: Vec<bool>,
    ever_online_count: usize,
    /// Round-robin cursor per gateway operator.
    operator_cursor: Vec<usize>,
    online_count: usize,
    peak_pending: usize,
    options: ExecOptions,
    /// Global sequence number of the event currently being handled; tags the
    /// observation work the handler emits so shard results merge in order.
    event_seq: u64,
    /// Observation work emitted by handlers, not yet executed.
    pending_obs: Vec<(u64, ObsWork)>,
    /// Scratch buffer for inline observation execution.
    obs_scratch: Vec<(u64, SinkOp)>,
    /// The inline observation executor of the non-sharded modes (`None` when
    /// `shard_handlers >= 1`; the sharded loop spawns per-shard executors).
    obs_exec: Option<ObsShard>,
}

impl Network {
    /// Builds the runtime state for a scenario. Initial events (churn and the
    /// request vectors) are pulled lazily during [`Network::run`]; memory
    /// stays proportional to the population, not the horizon.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] reports problems.
    pub fn new(scenario: Scenario) -> Self {
        Self::build(scenario, ExecOptions::default(), Vec::new())
    }

    /// Builds a network with explicit execution options (lazy vs materialized
    /// scheduling, wheel vs seed scheduler, inline vs sharded observation
    /// execution). All combinations produce byte-identical monitor traces;
    /// they differ only in cost.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] reports problems.
    pub fn with_options(scenario: Scenario, options: ExecOptions) -> Self {
        Self::build(scenario, options, Vec::new())
    }

    /// Builds a lazy network fed by additional external event sources on top
    /// of whatever the scenario's own vectors contain. Sources rank after
    /// churn and the scenario vectors for timestamp tie-breaking, in the
    /// order given — pass node-request sources first, then gateway streams,
    /// to mirror the materialized layout.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] reports problems.
    pub fn with_sources(scenario: Scenario, sources: Vec<DynWorkloadSource>) -> Self {
        Self::build(scenario, ExecOptions::lazy(), sources)
    }

    /// Like [`Network::with_sources`], with explicit execution options
    /// (e.g. [`ExecOptions::lazy_parallel`]). The options must be a lazy
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] reports problems or the options are
    /// inconsistent with external sources.
    pub fn with_sources_options(
        scenario: Scenario,
        sources: Vec<DynWorkloadSource>,
        options: ExecOptions,
    ) -> Self {
        Self::build(scenario, options, sources)
    }

    fn build(scenario: Scenario, options: ExecOptions, external: Vec<DynWorkloadSource>) -> Self {
        let problems = scenario.validate();
        assert!(
            problems.is_empty(),
            "scenario is inconsistent: {problems:?}"
        );
        assert!(
            !options.materialized || external.is_empty(),
            "external sources require lazy execution"
        );
        assert!(
            options.materialized || !options.baseline_scheduler,
            "lazy execution requires the timer wheel: the source-merge loop peeks the queue \
             once per event, which is O(pending) on the seed scheduler"
        );
        assert!(
            !options.materialized || options.parallel_regions <= 1,
            "parallel regions advance lazy sources; the materialized path has none"
        );
        assert!(
            options.shard_handlers == 0 || !options.materialized,
            "sharded handler execution requires lazy sourcing"
        );
        // The root generator. The sampler choice is set before *any* stream
        // is derived so it propagates into every derived stream; the
        // identity/table streams draw uniforms only and are unaffected.
        let mut root = SimRng::new(scenario.seed);
        if options.fast_rng {
            root.set_normal_sampler(NormalSampler::Ziggurat);
        }
        let mut id_rng = root.derive("node-identities");

        // Node identities and state.
        let mut nodes = Vec::with_capacity(scenario.nodes.len());
        let mut node_peers = Vec::with_capacity(scenario.nodes.len());
        let mut node_addrs = Vec::with_capacity(scenario.nodes.len());
        let mut peer_index = HashMap::new();
        for (i, spec) in scenario.nodes.iter().enumerate() {
            let peer_id = PeerId::derived(scenario.seed, i as u64);
            let address = Multiaddr::random_in_country(&mut id_rng, spec.country);
            peer_index.insert(peer_id, i);
            node_peers.push(peer_id);
            node_addrs.push(address);
            nodes.push(NodeState {
                online: false,
                blockstore: Blockstore::with_config(BlockstoreConfig {
                    capacity: spec.config.cache_capacity,
                    gc_enabled: true,
                }),
                gateway_cache: if spec.config.role.is_gateway() {
                    Some(GatewayCache::new(GatewayCacheConfig::default()))
                } else {
                    None
                },
            });
        }

        let monitor_ids: Vec<PeerId> = (0..scenario.monitors.len())
            .map(|i| PeerId::derived(scenario.seed, 1_000_000 + i as u64))
            .collect();
        let monitor_addrs: Vec<Multiaddr> = scenario
            .monitors
            .iter()
            .map(|m| Multiaddr::random_in_country(&mut id_rng, m.country))
            .collect();

        // Initial providers.
        let mut providers = ProviderIndex::new(monitor_ids.len());
        for c in &scenario.content {
            providers.push_content(&c.initial_providers);
        }
        let root_index: HashMap<Cid, usize> = scenario
            .content
            .iter()
            .enumerate()
            .map(|(i, c)| (c.dag.root.clone(), i))
            .collect();

        // Routing tables for DHT servers: each server knows a random set of
        // other servers (clients are never inserted — the crawler bias).
        let mut table_rng = root.derive("routing-tables");
        let server_indices: Vec<usize> = scenario
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.config.dht_mode.is_server())
            .map(|(i, _)| i)
            .collect();
        let mut routing_tables = HashMap::new();
        for &i in &server_indices {
            let mut table = RoutingTable::with_default_k(node_peers[i]);
            let neighbour_target = 150.min(server_indices.len().saturating_sub(1));
            let mut inserted = 0;
            let mut attempts = 0;
            while inserted < neighbour_target && attempts < neighbour_target * 8 {
                attempts += 1;
                let j = server_indices[table_rng.gen_range(0..server_indices.len())];
                if j != i && table.insert(node_peers[j], true) {
                    inserted += 1;
                }
            }
            routing_tables.insert(i, table);
        }

        let mut queue = if options.baseline_scheduler {
            Queue::Baseline(BaselineScheduler::new())
        } else {
            Queue::Wheel(Scheduler::new())
        };
        let mut sources = Vec::new();
        if options.materialized {
            // The seed path: every initial event into the queue up front.
            for (i, spec) in scenario.nodes.iter().enumerate() {
                for session in &spec.schedule.sessions {
                    queue.schedule_at(session.start, NetEvent::NodeOnline(i));
                    queue.schedule_at(session.end, NetEvent::NodeOffline(i));
                }
            }
            for r in &scenario.requests {
                queue.schedule_at(
                    r.at,
                    NetEvent::UserRequest {
                        node: r.node,
                        content: r.content,
                    },
                );
            }
            for r in &scenario.gateway_requests {
                queue.schedule_at(
                    r.at,
                    NetEvent::GatewayHttp {
                        operator: r.operator,
                        content: r.content,
                    },
                );
            }
        } else {
            for (i, spec) in scenario.nodes.iter().enumerate() {
                if !spec.schedule.sessions.is_empty() {
                    sources.push(SourceState::Churn {
                        node: i,
                        cursor: ScheduleCursor::new(),
                    });
                }
            }
            if !scenario.requests.is_empty() {
                sources.push(SourceState::Requests {
                    cursor: 0,
                    order: stable_time_order(&scenario.requests, |r| r.at),
                });
            }
            if !scenario.gateway_requests.is_empty() {
                sources.push(SourceState::GatewayRequests {
                    cursor: 0,
                    order: stable_time_order(&scenario.gateway_requests, |r| r.at),
                });
            }
            sources.extend(external.into_iter().map(SourceState::External));
        }

        let operator_cursor = vec![0; scenario.operators.len()];
        let ever_online = vec![false; nodes.len()];
        let pending = PendingSlab::new(nodes.len());
        // Latency table and observation base are derived before the scenario
        // moves into the core.
        let latency = scenario.params.latency.table();
        let obs_base = root.derive("node-obs");
        let core = Arc::new(ScenarioCore {
            scenario,
            node_peers,
            node_addrs,
            monitor_ids,
            monitor_addrs,
            root_index,
            routing_tables,
            peer_index,
            latency,
            obs_base,
        });
        let obs_exec =
            (options.shard_handlers == 0).then(|| ObsShard::new(Arc::clone(&core), 1, 0));
        let mut network = Self {
            core,
            nodes,
            providers,
            pending,
            queue,
            sources,
            heads: BinaryHeap::new(),
            rng: root.derive("runtime"),
            counters: TypedCounters::new(),
            ever_online,
            ever_online_count: 0,
            operator_cursor,
            online_count: 0,
            peak_pending: 0,
            options,
            event_seq: 0,
            pending_obs: Vec::new(),
            obs_scratch: Vec::new(),
            obs_exec,
        };
        network.heads = (0..network.sources.len())
            .filter_map(|rank| network.source_peek(rank).map(|t| Reverse((t, rank as u32))))
            .collect();
        network
    }

    // ------------------------------------------------------------------
    // Accessors used by analyses, attacks and experiments.
    // ------------------------------------------------------------------

    /// The scenario this network was built from.
    pub fn scenario(&self) -> &Scenario {
        &self.core.scenario
    }

    /// Number of (non-monitor) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of monitors.
    pub fn monitor_count(&self) -> usize {
        self.core.monitor_count()
    }

    /// Peer ID of node `index`.
    pub fn peer_id(&self, index: usize) -> PeerId {
        self.core.node_peers[index]
    }

    /// Peer ID of monitor `index`.
    pub fn monitor_peer_id(&self, index: usize) -> PeerId {
        self.core.monitor_ids[index]
    }

    /// Address of monitor `index`.
    pub fn monitor_address(&self, index: usize) -> Multiaddr {
        self.core.monitor_addrs[index]
    }

    /// Address of node `index`.
    pub fn address(&self, index: usize) -> Multiaddr {
        self.core.node_addrs[index]
    }

    /// Country of node `index`.
    pub fn country(&self, index: usize) -> Country {
        self.core.scenario.nodes[index].country
    }

    /// Node index for a peer ID, if it belongs to a simulated node.
    pub fn node_of_peer(&self, peer: &PeerId) -> Option<usize> {
        self.core.peer_index.get(peer).copied()
    }

    /// Root CID of content item `index`.
    pub fn content_root(&self, index: usize) -> &Cid {
        self.core.content_root(index)
    }

    /// Returns true if node `index` currently holds the root block of the
    /// given CID in its block store. This is exactly the signal the TPI
    /// ("Testing for Past Interests") attack extracts by sending a probe
    /// request to the target.
    pub fn node_has_block(&self, index: usize, cid: &Cid) -> bool {
        self.nodes[index].blockstore.contains(cid)
    }

    /// Peer IDs of all nodes run by gateway operators (ground truth for the
    /// gateway-probing evaluation).
    pub fn gateway_ground_truth(&self) -> HashMap<String, Vec<PeerId>> {
        self.core
            .scenario
            .operators
            .iter()
            .map(|op| {
                (
                    op.name.clone(),
                    op.node_indices
                        .iter()
                        .map(|&i| self.core.node_peers[i])
                        .collect(),
                )
            })
            .collect()
    }

    /// Adds a new content item at runtime (used by probing attacks that
    /// generate fresh random blocks). Returns its content index.
    pub fn add_content(&mut self, spec: ContentSpec) -> usize {
        self.providers.push_content(&spec.initial_providers);
        self.pending.ensure_nodes(self.nodes.len());
        let index = {
            // Plain mutation before a run starts (refcount 1); copy-on-write
            // if a shard worker were still holding the old snapshot.
            let core = Arc::make_mut(&mut self.core);
            let index = core.scenario.content.len();
            core.root_index.insert(spec.dag.root.clone(), index);
            core.scenario.content.push(spec);
            index
        };
        if let Some(exec) = &mut self.obs_exec {
            exec.refresh_core(Arc::clone(&self.core));
        }
        index
    }

    /// Registers monitor `monitor` as a DHT provider for content `content`
    /// (step one of the gateway-probing methodology).
    pub fn register_monitor_provider(&mut self, monitor: usize, content: usize) {
        self.providers.insert_monitor(content, monitor);
    }

    /// Schedules an additional user request (attack tooling; works identically
    /// in lazy and materialized mode, before or during a run).
    pub fn schedule_request(&mut self, request: RequestEvent) {
        self.queue.schedule_at(
            request.at,
            NetEvent::UserRequest {
                node: request.node,
                content: request.content,
            },
        );
    }

    /// Schedules an additional gateway HTTP request.
    pub fn schedule_gateway_request(&mut self, request: GatewayRequestEvent) {
        self.queue.schedule_at(
            request.at,
            NetEvent::GatewayHttp {
                operator: request.operator,
                content: request.content,
            },
        );
    }

    /// Peer IDs of online DHT servers, usable as crawl bootstrap peers.
    pub fn online_server_peers(&self, at: SimTime, limit: usize) -> Vec<PeerId> {
        self.core
            .scenario
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                s.config.dht_mode.is_server()
                    && s.schedule.online_at(at)
                    && self.core.routing_tables.contains_key(i)
            })
            .map(|(i, _)| self.core.node_peers[i])
            .take(limit)
            .collect()
    }

    /// A [`DhtView`] of the network frozen at time `at`, for crawling.
    pub fn dht_view_at(&self, at: SimTime) -> NetworkDhtView<'_> {
        NetworkDhtView { network: self, at }
    }

    // ------------------------------------------------------------------
    // Lazy source plumbing.
    // ------------------------------------------------------------------

    /// Timestamp of the next event of source `rank`, if any.
    fn source_peek(&self, rank: usize) -> Option<SimTime> {
        source_state_peek(&self.sources[rank], &self.core.scenario)
    }

    /// Pulls the next event of source `rank`.
    fn source_pop(&mut self, rank: usize) -> Option<(SimTime, NetEvent)> {
        source_state_pop(&mut self.sources[rank], &self.core.scenario)
    }

    /// Takes the event of the source at the top of the head-heap, refreshes
    /// the heap entry, and syncs the queue clock.
    fn take_source_head(&mut self) -> (SimTime, NetEvent) {
        let Reverse((t, rank)) = self.heads.pop().expect("head checked by caller");
        let (at, event) = self
            .source_pop(rank as usize)
            .expect("a head entry implies a pending source event");
        debug_assert_eq!(at, t, "head time must match the source peek");
        if let Some(next) = self.source_peek(rank as usize) {
            debug_assert!(next >= at, "sources must yield nondecreasing times");
            self.heads.push(Reverse((next, rank)));
        }
        // Keep the queue clock in step so past-scheduling (attack tooling)
        // clamps exactly as it does on the materialized path.
        self.queue.advance_to(at);
        (at, event)
    }

    // ------------------------------------------------------------------
    // Execution.
    // ------------------------------------------------------------------

    /// Runs the simulation to completion, feeding `sink` with everything the
    /// monitors observe.
    pub fn run<S: MonitorSink>(&mut self, sink: &mut S) -> RunReport {
        if self.options.shard_handlers >= 1 {
            return self.run_sharded(sink);
        }
        if self.options.parallel_regions >= 2 && self.sources.len() >= 2 {
            return self.run_parallel_regions(sink);
        }
        self.run_serial(sink)
    }

    /// Executes the pending observation work inline (single-shard executor)
    /// and applies the resulting sink ops — the non-sharded modes' equivalent
    /// of one dispatch/collect round, run after every event.
    fn drain_obs_inline<S: MonitorSink>(&mut self, sink: &mut S) {
        if self.pending_obs.is_empty() {
            return;
        }
        let mut work = std::mem::take(&mut self.pending_obs);
        let mut out = std::mem::take(&mut self.obs_scratch);
        let mut exec = self
            .obs_exec
            .take()
            .expect("non-sharded modes keep an inline observation executor");
        for (seq, item) in &work {
            exec.execute(*seq, item, &mut out);
        }
        for (_, op) in &out {
            apply_sink_op(&self.core, &mut self.counters, op, sink);
        }
        work.clear();
        out.clear();
        self.pending_obs = work;
        self.obs_scratch = out;
        self.obs_exec = Some(exec);
    }

    /// Queues one observation-half task, tagged with the current event's
    /// global sequence number.
    #[inline]
    fn push_obs(&mut self, work: ObsWork) {
        self.pending_obs.push((self.event_seq, work));
    }

    fn run_serial<S: MonitorSink>(&mut self, sink: &mut S) -> RunReport {
        let horizon_end = SimTime::ZERO + self.core.scenario.horizon;
        let mut events = 0u64;
        // Obs: batched event counter (one local add per event), pending-set
        // gauge refreshed every 4096 events, handler-dispatch span sampled
        // 1-in-1024 — together well under the 5% overhead budget on the
        // ~10M events/s hot loop. None of this touches simulation state.
        let mut obs_events = obs::BatchedCounter::new(obs::counter!("sim.events"));
        let obs_pending = obs::gauge!("sim.pending");
        let dispatch_hist = obs::histogram!("sim.handler_dispatch_ns");
        loop {
            let pending = self.queue.pending() + self.heads.len();
            if pending > self.peak_pending {
                self.peak_pending = pending;
            }
            if events & 4095 == 0 {
                obs_pending.set(pending as u64);
            }
            let (now, event) = match self.heads.peek() {
                // No live sources (materialized mode, or all sources drained):
                // drain the queue exactly as the seed loop did, without paying
                // a peek per event.
                None => match self.queue.pop_until(horizon_end) {
                    Some(popped) => popped,
                    None => break,
                },
                // Initial-event sources win timestamp ties against runtime
                // events: their materialized counterparts carried the lowest
                // sequence numbers.
                Some(&Reverse((ts, _))) => {
                    let take_source = match self.queue.peek_time() {
                        Some(tq) => ts <= tq,
                        None => true,
                    };
                    if take_source {
                        if ts > horizon_end {
                            break;
                        }
                        self.take_source_head()
                    } else {
                        match self.queue.pop_until(horizon_end) {
                            Some(popped) => popped,
                            None => break,
                        }
                    }
                }
            };
            events += 1;
            obs_events.incr();
            let _span = (events & 1023 == 0).then(|| dispatch_hist.timer());
            self.event_seq = events;
            self.handle_event(now, event);
            self.drain_obs_inline(sink);
        }
        RunReport {
            counters: self.counters.to_counters(),
            events_processed: events,
            nodes_ever_online: self.ever_online_count,
            peak_pending: self.peak_pending,
        }
    }

    /// The parallel-regions event loop (see
    /// [`ExecOptions::parallel_regions`]).
    ///
    /// The lazy source processes are partitioned round-robin into
    /// independent regions, *keeping their global ranks*. The run then
    /// alternates between two phases separated by monitor-visible
    /// synchronization barriers (fixed-width time windows):
    ///
    /// 1. **advance** — every region, on its own worker thread, pulls all of
    ///    its sources' events up to the barrier and sorts them by
    ///    `(time, rank)`. Source processes are pure functions of the
    ///    scenario and their own RNG streams — never of simulation state —
    ///    so running them ahead of the main loop yields exactly the events
    ///    the serial merge would have pulled one at a time.
    /// 2. **apply** — the main thread merges the region batches (a k-way
    ///    merge by `(time, rank)`, reproducing the head-heap's order
    ///    exactly) and interleaves them with the runtime queue under the
    ///    serial loop's tie rule: a source event at `t` precedes queue
    ///    events at `t` and follows queue events before `t`.
    ///
    /// The handler side stays sequential, so the monitor trace, counters and
    /// event count are bit-identical to the serial lazy mode — asserted by
    /// the digest checks in `simnet_bench` and the equivalence tests.
    /// `peak_pending` additionally counts the buffered window (bounded by
    /// window width × aggregate event rate, not by the horizon).
    fn run_parallel_regions<S: MonitorSink>(&mut self, sink: &mut S) -> RunReport {
        /// Barrier spacing: long enough to amortize the per-window thread
        /// fan-out, short enough that a window's event buffer stays a small
        /// slice of the horizon.
        const REGION_WINDOW: SimDuration = SimDuration::from_hours(1);

        let horizon_end = SimTime::ZERO + self.core.scenario.horizon;
        let regions = self.options.parallel_regions.min(self.sources.len());
        // Partition the sources round-robin, keeping each one's global rank
        // (the merge key that reproduces serial order). The head-heap is not
        // used in this mode.
        let mut partitions: Vec<Vec<(u32, SourceState)>> =
            (0..regions).map(|_| Vec::new()).collect();
        for (rank, source) in std::mem::take(&mut self.sources).into_iter().enumerate() {
            partitions[rank % regions].push((rank as u32, source));
        }
        self.heads.clear();

        let mut events = 0u64;
        // Same obs instrumentation as the serial loop (the two modes must
        // stay comparable in both output and overhead), plus a span per
        // region-advance barrier.
        let mut obs_events = obs::BatchedCounter::new(obs::counter!("sim.events"));
        let obs_pending = obs::gauge!("sim.pending");
        let dispatch_hist = obs::histogram!("sim.handler_dispatch_ns");
        let mut buffer: Vec<(SimTime, u32, NetEvent)> = Vec::new();
        let mut next = 0usize;
        let mut barrier = SimTime::ZERO;
        loop {
            // Advance phase: refill the buffer from the regions, window by
            // window, until something is buffered or the horizon is reached.
            while next >= buffer.len() && barrier < horizon_end {
                barrier = (barrier + REGION_WINDOW).min(horizon_end);
                let deadline = barrier;
                let scenario = &self.core.scenario;
                let _advance_span = obs::histogram!("sim.region_advance_ns").timer();
                let batches: Vec<Vec<(SimTime, u32, NetEvent)>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = partitions
                        .iter_mut()
                        .map(|partition| {
                            scope.spawn(move || {
                                let mut batch = Vec::new();
                                for (rank, source) in partition.iter_mut() {
                                    while source_state_peek(source, scenario)
                                        .is_some_and(|t| t <= deadline)
                                    {
                                        let (at, event) = source_state_pop(source, scenario)
                                            .expect("peek implies a pending event");
                                        batch.push((at, *rank, event));
                                    }
                                }
                                // Stable by (time, rank): equal keys only
                                // arise within one source, whose pull order
                                // is preserved.
                                batch.sort_by_key(|&(t, rank, _)| (t, rank));
                                batch
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|handle| handle.join().expect("region worker panicked"))
                        .collect()
                });
                buffer.clear();
                next = 0;
                for batch in batches {
                    buffer.extend(batch);
                }
                // Merge of the per-region sorted batches; stability keeps
                // intra-source order on (unreachable) full-key ties.
                buffer.sort_by_key(|&(t, rank, _)| (t, rank));
                if buffer.is_empty() {
                    // Quiet window: jump the barrier to just before the
                    // earliest pending source event (or the horizon, when
                    // every source is exhausted) instead of spinning
                    // through empty windows.
                    barrier = partitions
                        .iter()
                        .flatten()
                        .filter_map(|(_, source)| source_state_peek(source, scenario))
                        .min()
                        .map(|t| SimTime::from_millis(t.as_millis().saturating_sub(1)))
                        .unwrap_or(horizon_end)
                        .clamp(barrier, horizon_end);
                }
            }

            let pending = self.queue.pending() + (buffer.len() - next);
            if pending > self.peak_pending {
                self.peak_pending = pending;
            }
            if events & 4095 == 0 {
                obs_pending.set(pending as u64);
            }
            // Apply phase: the serial loop's rule, verbatim — source events
            // win timestamp ties against queue events.
            let (now, event) = match buffer.get(next) {
                None => match self.queue.pop_until(horizon_end) {
                    Some(popped) => popped,
                    None => break,
                },
                Some(&(ts, _, _)) => {
                    let take_source = match self.queue.peek_time() {
                        Some(tq) => ts <= tq,
                        None => true,
                    };
                    if take_source {
                        let (at, _, event) = buffer[next];
                        next += 1;
                        // Keep the queue clock in step, as the serial
                        // source-head path does.
                        self.queue.advance_to(at);
                        (at, event)
                    } else {
                        match self.queue.pop_until(horizon_end) {
                            Some(popped) => popped,
                            None => break,
                        }
                    }
                }
            };
            events += 1;
            obs_events.incr();
            let _span = (events & 1023 == 0).then(|| dispatch_hist.timer());
            self.event_seq = events;
            self.handle_event(now, event);
            self.drain_obs_inline(sink);
        }
        RunReport {
            counters: self.counters.to_counters(),
            events_processed: events,
            nodes_ever_online: self.ever_online_count,
            peak_pending: self.peak_pending,
        }
    }

    // ------------------------------------------------------------------
    // Handlers: the state half. Observable side effects are queued as
    // `ObsWork` (executed inline or on shard workers, identically).
    // ------------------------------------------------------------------

    fn handle_event(&mut self, now: SimTime, event: NetEvent) {
        match event {
            NetEvent::NodeOnline(i) => self.handle_online(i, now),
            NetEvent::NodeOffline(i) => self.handle_offline(i, now),
            NetEvent::UserRequest { node, content } => {
                self.handle_request(node, content, now, false)
            }
            NetEvent::Rebroadcast { node, content } => self.handle_rebroadcast(node, content, now),
            NetEvent::RetrievalComplete {
                node,
                content,
                resolution,
            } => self.handle_retrieval_complete(node, content, resolution, now),
            NetEvent::GatewayHttp { operator, content } => {
                self.handle_gateway_http(operator, content, now)
            }
        }
    }

    fn handle_online(&mut self, i: usize, now: SimTime) {
        if self.nodes[i].online {
            return;
        }
        self.nodes[i].online = true;
        self.online_count += 1;
        if !self.ever_online[i] {
            self.ever_online[i] = true;
            self.ever_online_count += 1;
        }
        self.counters.incr(SimCounter::NodeOnlineEvents);
        self.push_obs(ObsWork::Online { node: i, at: now });
    }

    fn handle_offline(&mut self, i: usize, now: SimTime) {
        if !self.nodes[i].online {
            return;
        }
        self.nodes[i].online = false;
        self.online_count = self.online_count.saturating_sub(1);
        self.counters.incr(SimCounter::NodeOfflineEvents);
        self.pending.clear_node(i);
        self.push_obs(ObsWork::Offline { node: i, at: now });
    }

    fn want_request_type(&self, node: usize, now: SimTime) -> RequestType {
        match self.core.scenario.nodes[node].upgrade.protocol_at(now) {
            ProtocolVersion::Modern => RequestType::WantHave,
            ProtocolVersion::Legacy => RequestType::WantBlock,
        }
    }

    fn handle_request(
        &mut self,
        node: usize,
        content: usize,
        now: SimTime,
        via_gateway_revalidation: bool,
    ) {
        if !self.nodes[node].online {
            self.counters.incr(SimCounter::RequestsWhileOffline);
            return;
        }
        self.counters.incr(SimCounter::RequestsTotal);

        // Local cache: no network activity at all (the monitor blind spot the
        // paper describes for repeated requests).
        if !via_gateway_revalidation
            && self.nodes[node]
                .blockstore
                .contains(self.core.content_root(content))
        {
            self.counters.incr(SimCounter::RequestsCacheHit);
            return;
        }
        if self.pending.get(node, content).is_some() {
            self.counters.incr(SimCounter::RequestsAlreadyPending);
            return;
        }

        self.pending.insert(node, content, now);
        let rtype = self.want_request_type(node, now);
        self.push_obs(ObsWork::Broadcast {
            node,
            rtype,
            content: content as u32,
            at: now,
        });
        self.counters.incr(SimCounter::Broadcasts);
        self.resolve(node, content, now);
    }

    fn handle_rebroadcast(&mut self, node: usize, content: usize, now: SimTime) {
        if !self.nodes[node].online {
            return;
        }
        let Some(started) = self.pending.get(node, content) else {
            return; // resolved or cancelled in the meantime
        };
        let timeout = self.core.scenario.nodes[node].config.want_timeout;
        if now.since(started) >= timeout {
            self.pending.remove(node, content);
            self.counters.incr(SimCounter::WantsTimedOut);
            return;
        }
        let rtype = self.want_request_type(node, now);
        self.push_obs(ObsWork::Broadcast {
            node,
            rtype,
            content: content as u32,
            at: now,
        });
        self.counters.incr(SimCounter::Rebroadcasts);
        self.resolve(node, content, now);
    }

    /// Decides how (and whether) an outstanding want gets resolved, and
    /// schedules either the completion or the next re-broadcast.
    fn resolve(&mut self, node: usize, content: usize, now: SimTime) {
        // One linear pass over the sorted provider list: how many online
        // provider *nodes* there are. The monitor-provider pick is a
        // trailing-zeros scan of the content's monitor mask — deterministic
        // lowest-index, unlike the seed's hash-set iteration order.
        let mut provider_nodes = 0u32;
        for &p in self.providers.node_providers(content) {
            let i = p as usize;
            if i != node && self.nodes[i].online {
                provider_nodes += 1;
            }
        }
        let monitor_provider = self.providers.first_monitor(content);

        let resolution = if provider_nodes == 0 && monitor_provider.is_none() {
            Resolution::Unresolved
        } else {
            // Probability that at least one provider is a direct neighbour of
            // the requester, given the requester's connection count.
            let conn = self.core.scenario.nodes[node].connections as f64;
            let online_total = self.online_count.max(2) as f64;
            let p_single = (conn / online_total).min(1.0);
            let p_any_neighbour = 1.0 - (1.0 - p_single).powi(provider_nodes as i32);
            if provider_nodes > 0 && self.rng.gen_bool(p_any_neighbour.clamp(0.0, 1.0)) {
                Resolution::Neighbour
            } else if let Some(m) = monitor_provider {
                Resolution::MonitorProvider(m)
            } else {
                Resolution::Dht
            }
        };

        match resolution {
            Resolution::Unresolved => {
                let interval = self.core.scenario.params.rebroadcast_interval;
                self.queue
                    .schedule_at(now + interval, NetEvent::Rebroadcast { node, content });
            }
            Resolution::MonitorProvider(m) => {
                // The requester finds the monitor in the DHT, connects and
                // sends a targeted WANT_BLOCK — exactly the signal the
                // gateway-probing attack waits for.
                self.push_obs(ObsWork::Targeted {
                    node,
                    monitor: m,
                    content: content as u32,
                    at: now,
                });
                let delay = self.sample_fetch_delay(self.core.scenario.params.dht_fetch_ms);
                self.queue.schedule_at(
                    now + delay,
                    NetEvent::RetrievalComplete {
                        node,
                        content,
                        resolution,
                    },
                );
            }
            Resolution::Neighbour => {
                let delay = self.sample_fetch_delay(self.core.scenario.params.neighbour_fetch_ms);
                self.queue.schedule_at(
                    now + delay,
                    NetEvent::RetrievalComplete {
                        node,
                        content,
                        resolution,
                    },
                );
            }
            Resolution::Dht => {
                let delay = self.sample_fetch_delay(self.core.scenario.params.dht_fetch_ms);
                self.queue.schedule_at(
                    now + delay,
                    NetEvent::RetrievalComplete {
                        node,
                        content,
                        resolution,
                    },
                );
            }
        }
    }

    fn sample_fetch_delay(&mut self, bounds: (u64, u64)) -> SimDuration {
        let (lo, hi) = bounds;
        let ms = if hi > lo {
            self.rng.gen_range(lo..hi)
        } else {
            lo
        };
        SimDuration::from_millis(ms)
    }

    fn handle_retrieval_complete(
        &mut self,
        node: usize,
        content: usize,
        resolution: Resolution,
        now: SimTime,
    ) {
        if self.pending.remove(node, content).is_none() {
            return; // node went offline or want timed out
        }
        if !self.nodes[node].online {
            return;
        }
        match resolution {
            Resolution::Neighbour => self.counters.incr(SimCounter::ResolvedViaNeighbour),
            Resolution::Dht => self.counters.incr(SimCounter::ResolvedViaDht),
            Resolution::MonitorProvider(_) => {
                self.counters.incr(SimCounter::ResolvedViaMonitorProvider)
            }
            Resolution::Unresolved => {}
        }

        // Cache the root block (logical size of the whole DAG) and become a
        // provider if re-providing is enabled.
        let root_block = self.core.scenario.content[content].dag.root_block().clone();
        self.nodes[node].blockstore.put(root_block, now);
        if self.core.scenario.nodes[node].config.reprovide {
            self.providers.insert_node(content, node);
        }

        // CANCEL goes out to every peer that received the want broadcast —
        // monitors included.
        self.push_obs(ObsWork::Broadcast {
            node,
            rtype: RequestType::Cancel,
            content: content as u32,
            at: now,
        });
        self.counters.incr(SimCounter::Cancels);
    }

    fn handle_gateway_http(&mut self, operator: usize, content: usize, now: SimTime) {
        self.counters.incr(SimCounter::GatewayHttpRequests);
        let op = &self.core.scenario.operators[operator];
        if !op.http_functional {
            self.counters.incr(SimCounter::GatewayHttpFailed);
            return;
        }
        // Round-robin over the operator's online nodes, without materializing
        // the candidate list.
        let online = op
            .node_indices
            .iter()
            .filter(|&&i| self.nodes[i].online)
            .count();
        if online == 0 {
            self.counters.incr(SimCounter::GatewayHttpNoNodeOnline);
            return;
        }
        let cursor = self.operator_cursor[operator];
        self.operator_cursor[operator] = cursor.wrapping_add(1);
        let node = op
            .node_indices
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].online)
            .nth(cursor % online)
            .expect("count checked above");

        let outcome = self.nodes[node]
            .gateway_cache
            .as_mut()
            .expect("gateway nodes have an HTTP cache")
            .request(self.core.content_root(content), now);
        match outcome {
            CacheOutcome::Hit => {
                self.counters.incr(SimCounter::GatewayCacheHits);
            }
            CacheOutcome::Revalidate => {
                self.counters.incr(SimCounter::GatewayCacheRevalidations);
                // Revalidation triggers a Bitswap want even though the bytes
                // are (usually) still present locally; the want resolves
                // almost immediately and is cancelled again a few hundred
                // milliseconds later.
                let rtype = self.want_request_type(node, now);
                self.push_obs(ObsWork::RevalidateCancel {
                    node,
                    rtype,
                    content: content as u32,
                    at: now,
                });
            }
            CacheOutcome::Miss => {
                self.counters.incr(SimCounter::GatewayCacheMisses);
                self.handle_request(node, content, now, true);
            }
        }
    }
}

/// Timestamp of a source's next event, if any. Free-standing (state +
/// scenario, no `&Network`) so that region workers advance sources with the
/// *identical* code the serial merge loop uses.
fn source_state_peek(source: &SourceState, scenario: &Scenario) -> Option<SimTime> {
    match source {
        SourceState::Churn { node, cursor } => {
            cursor.peek(&scenario.nodes[*node].schedule).map(|(t, _)| t)
        }
        SourceState::Requests { cursor, order } => {
            cursor_index(scenario.requests.len(), *cursor, order).map(|i| scenario.requests[i].at)
        }
        SourceState::GatewayRequests { cursor, order } => {
            cursor_index(scenario.gateway_requests.len(), *cursor, order)
                .map(|i| scenario.gateway_requests[i].at)
        }
        SourceState::External(source) => source.peek_time(),
    }
}

/// Pulls a source's next event. See [`source_state_peek`] for why this is
/// free-standing.
fn source_state_pop(source: &mut SourceState, scenario: &Scenario) -> Option<(SimTime, NetEvent)> {
    match source {
        SourceState::Churn { node, cursor } => {
            let (t, event) = cursor.peek(&scenario.nodes[*node].schedule)?;
            cursor.advance();
            let event = match event {
                ChurnEvent::Online => NetEvent::NodeOnline(*node),
                ChurnEvent::Offline => NetEvent::NodeOffline(*node),
            };
            Some((t, event))
        }
        SourceState::Requests { cursor, order } => {
            let index = cursor_index(scenario.requests.len(), *cursor, order)?;
            *cursor += 1;
            let r = scenario.requests[index];
            Some((
                r.at,
                NetEvent::UserRequest {
                    node: r.node,
                    content: r.content,
                },
            ))
        }
        SourceState::GatewayRequests { cursor, order } => {
            let index = cursor_index(scenario.gateway_requests.len(), *cursor, order)?;
            *cursor += 1;
            let r = scenario.gateway_requests[index];
            Some((
                r.at,
                NetEvent::GatewayHttp {
                    operator: r.operator,
                    content: r.content,
                },
            ))
        }
        SourceState::External(source) => {
            let (t, event) = source.next_event()?;
            let event = match event {
                WorkloadEvent::Request { node, content } => NetEvent::UserRequest { node, content },
                WorkloadEvent::Gateway { operator, content } => {
                    NetEvent::GatewayHttp { operator, content }
                }
            };
            Some((t, event))
        }
    }
}

/// The node whose state a source's events act on, if it names exactly one —
/// the partition affinity the sharded driver uses. Partitioning never affects
/// the merged order (ranks are global), so a `None` falls back to round-robin.
fn source_shard_hint(source: &SourceState) -> Option<usize> {
    match source {
        SourceState::Churn { node, .. } => Some(*node),
        SourceState::External(s) => s.shard_hint(),
        SourceState::Requests { .. } | SourceState::GatewayRequests { .. } => None,
    }
}

/// Resolves a vector cursor to the element index it points at — through the
/// stable time permutation when one exists — or `None` past the end. Both
/// request-vector source kinds peek and pop through this one helper so their
/// ordering logic cannot drift apart.
fn cursor_index(len: usize, cursor: usize, order: &Option<Box<[u32]>>) -> Option<usize> {
    match order {
        Some(order) => order.get(cursor).map(|&i| i as usize),
        None => (cursor < len).then_some(cursor),
    }
}

/// Stable permutation of `items` by timestamp, or `None` when they are
/// already sorted (the generated workloads always are). Stable order on ties
/// matches the sequence-number order the materialized path would use.
fn stable_time_order<T>(items: &[T], at: impl Fn(&T) -> SimTime) -> Option<Box<[u32]>> {
    assert!(
        u32::try_from(items.len()).is_ok(),
        "request vectors above u32::MAX entries are not supported"
    );
    if items.windows(2).all(|w| at(&w[0]) <= at(&w[1])) {
        return None;
    }
    let mut order: Vec<u32> = (0..items.len() as u32).collect();
    order.sort_by_key(|&i| at(&items[i as usize]));
    Some(order.into_boxed_slice())
}

/// A [`DhtView`] over the network frozen at a particular instant, used by the
/// crawler baseline.
pub struct NetworkDhtView<'a> {
    network: &'a Network,
    at: SimTime,
}

impl DhtView for NetworkDhtView<'_> {
    fn is_server(&self, peer: &PeerId) -> bool {
        self.network
            .node_of_peer(peer)
            .map(|i| {
                self.network.core.scenario.nodes[i]
                    .config
                    .dht_mode
                    .is_server()
            })
            .unwrap_or(false)
    }

    fn is_responsive(&self, peer: &PeerId) -> bool {
        self.network
            .node_of_peer(peer)
            .map(|i| {
                let spec = &self.network.core.scenario.nodes[i];
                spec.schedule.online_at(self.at) && spec.config.dht_mode.is_server()
            })
            .unwrap_or(false)
    }

    fn bucket_entries(&self, peer: &PeerId) -> Option<Vec<PeerId>> {
        if !self.is_responsive(peer) {
            return None;
        }
        let index = self.network.node_of_peer(peer)?;
        self.network
            .core
            .routing_tables
            .get(&index)
            .map(|t| t.peers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::gateway::GatewayOperator;
    use crate::spec::{ContentSpec, MonitorSpec, NodeSpec, RequestEvent, Scenario};
    use crate::version::UpgradeSchedule;
    use ipfs_mon_blockstore::build_file;
    use ipfs_mon_kad::Crawler;
    use ipfs_mon_simnet::churn::{NodeSchedule, OnlineSession};

    fn always_online(horizon: SimDuration) -> NodeSchedule {
        NodeSchedule {
            stable: true,
            sessions: vec![OnlineSession {
                start: SimTime::ZERO,
                end: SimTime::ZERO + horizon,
            }],
        }
    }

    /// A scenario with `n` always-online regular nodes, one monitor attached
    /// to everyone, and one resolvable plus one unresolvable content item.
    fn base_scenario(n: usize) -> Scenario {
        let horizon = SimDuration::from_hours(2);
        let mut scenario = Scenario::new(42, horizon);
        for _ in 0..n {
            scenario.nodes.push(NodeSpec {
                config: NodeConfig::regular(),
                country: Country::De,
                schedule: always_online(horizon),
                upgrade: UpgradeSchedule::always_modern(),
                connections: 700,
            });
        }
        scenario
            .monitors
            .push(MonitorSpec::new("us", Country::Us, 1.0));
        scenario.content.push(ContentSpec {
            dag: build_file(100, 50_000, 256 * 1024, 174),
            initial_providers: vec![0],
        });
        scenario.content.push(ContentSpec {
            dag: build_file(200, 50_000, 256 * 1024, 174),
            initial_providers: vec![],
        });
        scenario
    }

    #[test]
    fn request_produces_want_and_cancel_observations() {
        let mut scenario = base_scenario(5);
        scenario.requests.push(RequestEvent {
            at: SimTime::from_secs(60),
            node: 3,
            content: 0,
        });
        let mut network = Network::new(scenario);
        let requester = network.peer_id(3);
        let mut sink = RecordingSink::new(1);
        let report = network.run(&mut sink);

        let obs = &sink.observations[0];
        let wants: Vec<_> = obs
            .iter()
            .filter(|o| o.request_type == RequestType::WantHave)
            .collect();
        let cancels: Vec<_> = obs
            .iter()
            .filter(|o| o.request_type == RequestType::Cancel)
            .collect();
        assert_eq!(wants.len(), 1);
        assert_eq!(cancels.len(), 1);
        assert_eq!(wants[0].peer, requester);
        assert_eq!(wants[0].cid, *network.content_root(0));
        assert!(cancels[0].timestamp > wants[0].timestamp);
        assert_eq!(
            report.counters.get("resolved_via_neighbour") + report.counters.get("resolved_via_dht"),
            1
        );
    }

    #[test]
    fn cached_content_suppresses_second_request() {
        let mut scenario = base_scenario(3);
        scenario.requests.push(RequestEvent {
            at: SimTime::from_secs(60),
            node: 1,
            content: 0,
        });
        scenario.requests.push(RequestEvent {
            at: SimTime::from_secs(1200),
            node: 1,
            content: 0,
        });
        let mut network = Network::new(scenario);
        let mut sink = RecordingSink::new(1);
        let report = network.run(&mut sink);
        assert_eq!(report.counters.get("requests_cache_hit"), 1);
        // Only one WANT_HAVE despite two user requests.
        let wants = sink.observations[0]
            .iter()
            .filter(|o| o.request_type == RequestType::WantHave)
            .count();
        assert_eq!(wants, 1);
    }

    #[test]
    fn unresolvable_content_is_rebroadcast_until_timeout() {
        let mut scenario = base_scenario(3);
        scenario.requests.push(RequestEvent {
            at: SimTime::from_secs(60),
            node: 1,
            content: 1, // no providers
        });
        let mut network = Network::new(scenario);
        let mut sink = RecordingSink::new(1);
        let report = network.run(&mut sink);
        // want_timeout is 10 min, re-broadcast every 30 s → 19 re-broadcasts
        // after the initial one (the 20th tick hits the timeout).
        assert!(report.counters.get("rebroadcasts") >= 15);
        assert_eq!(report.counters.get("wants_timed_out"), 1);
        assert_eq!(report.counters.get("cancels"), 0);
        let wants = sink.observations[0]
            .iter()
            .filter(|o| o.request_type == RequestType::WantHave)
            .count();
        assert_eq!(wants as u64, 1 + report.counters.get("rebroadcasts"));
    }

    #[test]
    fn downloader_becomes_provider_for_subsequent_requests() {
        let mut scenario = base_scenario(4);
        scenario.requests.push(RequestEvent {
            at: SimTime::from_secs(60),
            node: 1,
            content: 0,
        });
        scenario.requests.push(RequestEvent {
            at: SimTime::from_secs(600),
            node: 2,
            content: 0,
        });
        let mut network = Network::new(scenario);
        let mut sink = RecordingSink::new(1);
        let report = network.run(&mut sink);
        assert_eq!(report.counters.get("cancels"), 2);
        assert!(network.node_has_block(1, &network.content_root(0).clone()));
        assert!(network.node_has_block(2, &network.content_root(0).clone()));
    }

    #[test]
    fn legacy_nodes_emit_want_block() {
        let mut scenario = base_scenario(3);
        scenario.nodes[1].upgrade = UpgradeSchedule::never();
        scenario.requests.push(RequestEvent {
            at: SimTime::from_secs(60),
            node: 1,
            content: 0,
        });
        let mut network = Network::new(scenario);
        let mut sink = RecordingSink::new(1);
        network.run(&mut sink);
        assert!(sink.observations[0]
            .iter()
            .any(|o| o.request_type == RequestType::WantBlock));
        assert!(!sink.observations[0]
            .iter()
            .any(|o| o.request_type == RequestType::WantHave));
    }

    #[test]
    fn offline_nodes_do_not_request() {
        let mut scenario = base_scenario(2);
        scenario.nodes[1].schedule = NodeSchedule {
            stable: false,
            sessions: vec![],
        };
        scenario.requests.push(RequestEvent {
            at: SimTime::from_secs(60),
            node: 1,
            content: 0,
        });
        let mut network = Network::new(scenario);
        let mut sink = RecordingSink::new(1);
        let report = network.run(&mut sink);
        assert_eq!(report.counters.get("requests_while_offline"), 1);
        assert_eq!(sink.total_observations(), 0);
    }

    #[test]
    fn monitor_connection_events_are_emitted() {
        let scenario = base_scenario(10);
        let mut network = Network::new(scenario);
        let mut sink = RecordingSink::new(1);
        network.run(&mut sink);
        // attach probability 1.0 → all ten nodes connect to the monitor.
        assert_eq!(sink.connections[0].len(), 10);
        // Always-online schedule ends at the horizon, which is outside
        // pop_until's range only if equal — the offline event fires exactly at
        // the horizon, so disconnects are recorded.
        assert!(sink.connections[0]
            .iter()
            .all(|(_, _, _, end)| end.is_some()));
    }

    #[test]
    fn monitor_provider_receives_targeted_want_block() {
        let mut scenario = base_scenario(3);
        // Fresh probe content with no providers, later provided by monitor 0.
        scenario.content.push(ContentSpec {
            dag: build_file(999, 100, 1024, 4),
            initial_providers: vec![],
        });
        scenario.requests.push(RequestEvent {
            at: SimTime::from_secs(100),
            node: 2,
            content: 2,
        });
        let mut network = Network::new(scenario);
        network.register_monitor_provider(0, 2);
        let mut sink = RecordingSink::new(1);
        let report = network.run(&mut sink);
        assert_eq!(report.counters.get("resolved_via_monitor_provider"), 1);
        let probe_root = network.content_root(2);
        assert!(sink.observations[0]
            .iter()
            .any(|o| o.request_type == RequestType::WantBlock && o.cid == *probe_root));
    }

    #[test]
    fn gateway_cache_controls_bitswap_visibility() {
        let mut scenario = base_scenario(3);
        // Add a gateway node run by one operator.
        let horizon = scenario.horizon;
        scenario.nodes.push(NodeSpec {
            config: NodeConfig::gateway(),
            country: Country::Us,
            schedule: always_online(horizon),
            upgrade: UpgradeSchedule::always_modern(),
            connections: 900,
        });
        let gw_index = scenario.nodes.len() - 1;
        scenario
            .operators
            .push(GatewayOperator::new("gateway.example", vec![gw_index], 1.0));
        // Three HTTP requests for the same content in quick succession: one
        // miss (Bitswap visible) followed by cache hits (invisible).
        for secs in [100, 200, 300] {
            scenario
                .gateway_requests
                .push(crate::spec::GatewayRequestEvent {
                    at: SimTime::from_secs(secs),
                    operator: 0,
                    content: 0,
                });
        }
        let mut network = Network::new(scenario);
        let mut sink = RecordingSink::new(1);
        let report = network.run(&mut sink);
        assert_eq!(report.counters.get("gateway_cache_misses"), 1);
        assert_eq!(report.counters.get("gateway_cache_hits"), 2);
        let gw_peer = network.peer_id(gw_index);
        let gw_wants = sink.observations[0]
            .iter()
            .filter(|o| o.peer == gw_peer && o.request_type.is_request())
            .count();
        assert_eq!(gw_wants, 1, "only the miss generates a Bitswap want");
    }

    #[test]
    fn dht_view_supports_crawling_and_misses_clients() {
        let mut scenario = base_scenario(30);
        // Make ten of the nodes DHT clients.
        for i in 0..10 {
            scenario.nodes[i].config = NodeConfig::client();
        }
        let network = Network::new(scenario);
        let at = SimTime::from_secs(600);
        let view = network.dht_view_at(at);
        let bootstrap = network.online_server_peers(at, 3);
        assert!(!bootstrap.is_empty());
        let crawl = Crawler::new().crawl(&view, &bootstrap);
        // The crawl sees servers only: 20 servers, 0 of the 10 clients.
        assert!(crawl.discovered_count() <= 20);
        assert!(crawl.discovered_count() >= 15, "most servers are reachable");
        for i in 0..10 {
            assert!(!crawl.discovered.contains(&network.peer_id(i)));
        }
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let build = || {
            let mut scenario = base_scenario(8);
            for secs in [60, 120, 180, 240] {
                scenario.requests.push(RequestEvent {
                    at: SimTime::from_secs(secs),
                    node: (secs / 60) as usize % 8,
                    content: (secs / 120) as usize % 2,
                });
            }
            scenario
        };
        let mut sink_a = RecordingSink::new(1);
        let mut sink_b = RecordingSink::new(1);
        Network::new(build()).run(&mut sink_a);
        Network::new(build()).run(&mut sink_b);
        assert_eq!(sink_a.observations, sink_b.observations);
    }

    /// Scenario with churn, user requests and gateway traffic — every event
    /// kind at once — for the execution-mode equivalence tests.
    fn busy_scenario(seed: u64) -> Scenario {
        let horizon = SimDuration::from_hours(3);
        let mut scenario = Scenario::new(seed, horizon);
        for i in 0..12 {
            // Mix always-online nodes with churning ones, including some
            // whose sessions abut exactly (offline and online at the same
            // instant) to exercise timestamp tie-breaking.
            let schedule = if i % 3 == 0 {
                always_online(horizon)
            } else {
                NodeSchedule {
                    stable: false,
                    sessions: vec![
                        OnlineSession {
                            start: SimTime::from_secs(40 * i as u64),
                            end: SimTime::from_secs(3_000 + 40 * i as u64),
                        },
                        OnlineSession {
                            start: SimTime::from_secs(3_000 + 40 * i as u64),
                            end: SimTime::ZERO + horizon,
                        },
                    ],
                }
            };
            scenario.nodes.push(NodeSpec {
                config: NodeConfig::regular(),
                country: Country::De,
                schedule,
                upgrade: UpgradeSchedule::always_modern(),
                connections: 700,
            });
        }
        scenario
            .monitors
            .push(MonitorSpec::new("us", Country::Us, 0.9));
        scenario
            .monitors
            .push(MonitorSpec::new("de", Country::De, 0.7));
        scenario.content.push(ContentSpec {
            dag: build_file(100, 50_000, 256 * 1024, 174),
            initial_providers: vec![0],
        });
        scenario.content.push(ContentSpec {
            dag: build_file(200, 50_000, 256 * 1024, 174),
            initial_providers: vec![],
        });
        // Requests, some at the exact instants of churn transitions.
        for (i, secs) in [40, 80, 120, 3_040, 3_080, 5_000, 5_000].iter().enumerate() {
            scenario.requests.push(RequestEvent {
                at: SimTime::from_secs(*secs),
                node: i % 12,
                content: i % 2,
            });
        }
        let horizon2 = scenario.horizon;
        scenario.nodes.push(NodeSpec {
            config: NodeConfig::gateway(),
            country: Country::Us,
            schedule: always_online(horizon2),
            upgrade: UpgradeSchedule::always_modern(),
            connections: 900,
        });
        let gw = scenario.nodes.len() - 1;
        scenario
            .operators
            .push(GatewayOperator::new("gw.example", vec![gw], 1.0));
        for secs in [100, 3_040, 6_000] {
            scenario
                .gateway_requests
                .push(crate::spec::GatewayRequestEvent {
                    at: SimTime::from_secs(secs),
                    operator: 0,
                    content: 0,
                });
        }
        scenario
    }

    #[test]
    fn all_execution_modes_produce_identical_traces() {
        for seed in [7, 21, 99] {
            let mut reference_sink = RecordingSink::new(2);
            let reference =
                Network::with_options(busy_scenario(seed), ExecOptions::seed_baseline())
                    .run(&mut reference_sink);
            for options in [
                ExecOptions::materialized_wheel(),
                ExecOptions::lazy(),
                ExecOptions::lazy_parallel(2),
                ExecOptions::lazy_parallel(5),
                ExecOptions::sharded(1),
                ExecOptions::sharded(2),
                ExecOptions::sharded(7),
            ] {
                let mut sink = RecordingSink::new(2);
                let report = Network::with_options(busy_scenario(seed), options).run(&mut sink);
                assert_eq!(
                    sink.observations, reference_sink.observations,
                    "observations diverge for seed {seed} under {options:?}"
                );
                assert_eq!(
                    sink.connections, reference_sink.connections,
                    "connections diverge for seed {seed} under {options:?}"
                );
                assert_eq!(report.events_processed, reference.events_processed);
                assert_eq!(
                    format!("{:?}", report.counters),
                    format!("{:?}", reference.counters)
                );
            }
        }
    }

    #[test]
    fn fast_rng_modes_are_mutually_identical() {
        // The ziggurat sampler changes the latency draws relative to
        // Box–Muller, but every execution mode must agree with every other
        // under the *same* sampler.
        for seed in [7, 21] {
            let mut reference_sink = RecordingSink::new(2);
            Network::with_options(busy_scenario(seed), ExecOptions::lazy().with_fast_rng())
                .run(&mut reference_sink);
            for options in [
                ExecOptions::seed_baseline().with_fast_rng(),
                ExecOptions::lazy_parallel(3).with_fast_rng(),
                ExecOptions::sharded(3).with_fast_rng(),
            ] {
                let mut sink = RecordingSink::new(2);
                Network::with_options(busy_scenario(seed), options).run(&mut sink);
                assert_eq!(
                    sink.observations, reference_sink.observations,
                    "observations diverge for seed {seed} under {options:?}"
                );
                assert_eq!(
                    sink.connections, reference_sink.connections,
                    "connections diverge for seed {seed} under {options:?}"
                );
            }
        }
    }

    #[test]
    fn lazy_mode_keeps_pending_set_small() {
        let mut scenario = busy_scenario(5);
        // Many more requests so materialized pending dwarfs concurrency.
        for i in 0..2_000u64 {
            scenario.requests.push(RequestEvent {
                at: SimTime::from_secs(10 + i * 5),
                node: (i % 12) as usize,
                content: (i % 2) as usize,
            });
        }
        let materialized =
            Network::with_options(scenario.clone(), ExecOptions::materialized_wheel())
                .run(&mut RecordingSink::new(2));
        let lazy = Network::new(scenario).run(&mut RecordingSink::new(2));
        assert_eq!(materialized.events_processed, lazy.events_processed);
        assert!(
            materialized.peak_pending >= 2_000,
            "materialized peak {} should carry the whole horizon",
            materialized.peak_pending
        );
        assert!(
            lazy.peak_pending < materialized.peak_pending / 10,
            "lazy peak {} should track concurrency, not horizon (materialized {})",
            lazy.peak_pending,
            materialized.peak_pending
        );
    }

    #[test]
    fn unsorted_request_vectors_replay_in_materialized_order() {
        let mut scenario = base_scenario(6);
        // Deliberately unsorted, with a timestamp tie: the materialized path
        // delivers ties in vector order, and the lazy path must match.
        scenario.requests = vec![
            RequestEvent {
                at: SimTime::from_secs(600),
                node: 1,
                content: 0,
            },
            RequestEvent {
                at: SimTime::from_secs(60),
                node: 2,
                content: 0,
            },
            RequestEvent {
                at: SimTime::from_secs(600),
                node: 3,
                content: 1,
            },
        ];
        let mut lazy_sink = RecordingSink::new(1);
        let mut materialized_sink = RecordingSink::new(1);
        Network::new(scenario.clone()).run(&mut lazy_sink);
        Network::with_options(scenario, ExecOptions::materialized_wheel())
            .run(&mut materialized_sink);
        assert_eq!(lazy_sink.observations, materialized_sink.observations);
    }

    #[test]
    fn mid_run_request_injection_works_in_lazy_mode() {
        // Attack tooling schedules extra requests against a built network;
        // in lazy mode those go through the runtime queue and must interleave
        // with source events exactly as on the materialized path.
        let build = |options: ExecOptions| {
            let mut network = Network::with_options(busy_scenario(3), options);
            network.schedule_request(RequestEvent {
                at: SimTime::from_secs(3_040), // ties a churn + request instant
                node: 4,
                content: 0,
            });
            network.schedule_request(RequestEvent {
                at: SimTime::from_secs(9_000),
                node: 5,
                content: 0,
            });
            let mut sink = RecordingSink::new(2);
            let report = network.run(&mut sink);
            (sink, report)
        };
        let (lazy_sink, lazy_report) = build(ExecOptions::lazy());
        let (seed_sink, seed_report) = build(ExecOptions::seed_baseline());
        assert_eq!(lazy_sink.observations, seed_sink.observations);
        assert_eq!(lazy_sink.connections, seed_sink.connections);
        assert_eq!(lazy_report.events_processed, seed_report.events_processed);
        // The sharded mode must interleave injected runtime events under the
        // same tie rule.
        for shards in [1, 2, 7] {
            let (sharded_sink, sharded_report) = build(ExecOptions::sharded(shards));
            assert_eq!(
                sharded_sink.observations, seed_sink.observations,
                "observations diverge with {shards} shards"
            );
            assert_eq!(sharded_sink.connections, seed_sink.connections);
            assert_eq!(
                sharded_report.events_processed,
                seed_report.events_processed
            );
        }
    }

    #[test]
    fn probe_content_added_at_runtime_is_observable_in_sharded_mode() {
        // add_content + register_monitor_provider after build (the
        // gateway-probing flow) goes through Arc::make_mut; the sharded
        // workers must see the refreshed core.
        let run = |options: ExecOptions| {
            let mut network = Network::with_options(busy_scenario(11), options);
            let content = network.add_content(ContentSpec {
                dag: build_file(7_777, 100, 1024, 4),
                initial_providers: vec![],
            });
            network.register_monitor_provider(1, content);
            network.schedule_request(RequestEvent {
                at: SimTime::from_secs(500),
                node: 0,
                content,
            });
            let mut sink = RecordingSink::new(2);
            let report = network.run(&mut sink);
            (sink, report)
        };
        let (serial_sink, serial_report) = run(ExecOptions::lazy());
        let (sharded_sink, sharded_report) = run(ExecOptions::sharded(3));
        assert_eq!(serial_sink.observations, sharded_sink.observations);
        assert_eq!(serial_sink.connections, sharded_sink.connections);
        assert_eq!(
            serial_report.events_processed,
            sharded_report.events_processed
        );
        assert_eq!(
            serial_report.counters.get("resolved_via_monitor_provider"),
            1
        );
    }
}
