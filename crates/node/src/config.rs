//! Per-node configuration and roles.

use ipfs_mon_bitswap::ProtocolVersion;
use ipfs_mon_kad::DhtMode;
use ipfs_mon_simnet::time::SimDuration;
use serde::{Deserialize, Serialize};

/// What kind of participant a simulated node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// An ordinary user-operated node ("homegrown" in the paper's Fig. 6).
    Regular,
    /// The IPFS side of a public HTTP/IPFS gateway.
    Gateway,
    /// A passive monitoring node (the paper's contribution). Monitors accept
    /// every connection, never request data, and never serve data.
    Monitor,
}

impl NodeRole {
    /// Returns true for gateway nodes.
    pub fn is_gateway(self) -> bool {
        matches!(self, NodeRole::Gateway)
    }

    /// Returns true for monitoring nodes.
    pub fn is_monitor(self) -> bool {
        matches!(self, NodeRole::Monitor)
    }
}

/// Static configuration of one simulated node.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NodeConfig {
    /// The node's role in the network.
    pub role: NodeRole,
    /// DHT participation mode (server or client).
    pub dht_mode: DhtMode,
    /// Bitswap protocol generation the node *starts* with. Nodes with an
    /// upgrade time switch from [`ProtocolVersion::Legacy`] to
    /// [`ProtocolVersion::Modern`] when they upgrade (Fig. 4).
    pub initial_protocol: ProtocolVersion,
    /// Whether the node re-provides (announces to the DHT) content it has
    /// downloaded. Default true, as in kubo.
    pub reprovide: bool,
    /// Block cache capacity in bytes.
    pub cache_capacity: u64,
    /// Target number of overlay connections the node maintains. The paper
    /// reports 600–900 for ordinary nodes; monitors have no limit.
    pub connection_target: u32,
    /// How long an unresolved want keeps being re-broadcast before the node
    /// gives up (bounds re-broadcast traffic for unresolvable CIDs).
    pub want_timeout: SimDuration,
}

impl NodeConfig {
    /// Configuration of an ordinary node.
    pub fn regular() -> Self {
        Self {
            role: NodeRole::Regular,
            dht_mode: DhtMode::Server,
            initial_protocol: ProtocolVersion::Modern,
            reprovide: true,
            cache_capacity: ipfs_mon_blockstore::DEFAULT_CAPACITY,
            connection_target: 750,
            want_timeout: SimDuration::from_mins(10),
        }
    }

    /// Configuration of a DHT-client node (behind NAT).
    pub fn client() -> Self {
        Self {
            dht_mode: DhtMode::Client,
            ..Self::regular()
        }
    }

    /// Configuration of a public-gateway node.
    pub fn gateway() -> Self {
        Self {
            role: NodeRole::Gateway,
            connection_target: 900,
            ..Self::regular()
        }
    }

    /// Configuration of a passive monitoring node.
    pub fn monitor() -> Self {
        Self {
            role: NodeRole::Monitor,
            dht_mode: DhtMode::Server,
            reprovide: false,
            connection_target: u32::MAX,
            ..Self::regular()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_roles() {
        assert_eq!(NodeConfig::regular().role, NodeRole::Regular);
        assert_eq!(NodeConfig::client().dht_mode, DhtMode::Client);
        assert!(NodeConfig::gateway().role.is_gateway());
        assert!(NodeConfig::monitor().role.is_monitor());
        assert!(
            !NodeConfig::monitor().reprovide,
            "monitors never provide data"
        );
        assert_eq!(NodeConfig::monitor().connection_target, u32::MAX);
    }

    #[test]
    fn regular_nodes_match_paper_connection_range() {
        let c = NodeConfig::regular().connection_target;
        assert!((600..=900).contains(&c));
    }
}
