//! Full IPFS node and network model for the monitoring suite.
//!
//! This crate assembles the substrates (DHT, Bitswap, block store, simulation
//! kernel) into an executable model of an IPFS-like network:
//!
//! * [`config`] — node roles and per-node configuration,
//! * [`version`] — client-version / protocol-upgrade modelling (Fig. 4),
//! * [`gateway`] — the public HTTP/IPFS gateway model (caches, operators),
//! * [`spec`] — declarative scenario descriptions,
//! * [`network`] — the simulator that executes a scenario and streams every
//!   monitor-visible Bitswap entry into a [`network::MonitorSink`].
//!
//! The passive monitoring methodology itself (trace collection, preprocessing,
//! estimators, attacks) lives in `ipfs-mon-core` and consumes the observation
//! stream produced here.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]

pub mod config;
pub mod counters;
pub mod gateway;
pub mod network;
pub mod spec;
pub mod version;

pub use config::{NodeConfig, NodeRole};
pub use counters::SimCounter;
pub use gateway::{CacheOutcome, GatewayCache, GatewayCacheConfig, GatewayOperator};
pub use network::{
    BitswapObservation, DynWorkloadSource, ExecOptions, MonitorSink, Network, NetworkDhtView,
    RecordingSink, RunReport,
};
pub use spec::{
    ContentSpec, GatewayRequestEvent, MonitorSpec, NodeSpec, RequestEvent, Scenario,
    ScenarioParams, WorkloadEvent,
};
pub use version::{AdoptionCurve, UpgradeSchedule};
