//! The continuous monitoring service: one long-running loop tying crash
//! recovery → resumed collection → incremental chain tailing → windowed
//! analysis, with *exactly-once* window output across kill/restart.
//!
//! # The loop
//!
//! [`MonitorService::open`] runs
//! [`recover_dataset`](ipfs_mon_tracestore::recover::recover_dataset) on
//! the directory (repairing any crash damage and reporting
//! [`ResumeCursor`]s), resumes the
//! [`DatasetWriter`] over the recovered manifest, and opens a
//! [`DatasetTail`] over the segment chains. From then on the caller feeds
//! entries with [`MonitorService::ingest`] (collection: appended,
//! rotated, checkpointed per [`DatasetConfig`]) and calls
//! [`MonitorService::poll`] whenever it wants answers: the tail decodes
//! every newly *durable* chunk frame into the windowed analysis sink,
//! which seals windows behind the cross-monitor watermark and emits one
//! [`WindowSummary`] JSON line per window. [`MonitorService::finish`]
//! writes the final manifest, drains the tail, and seals the remaining
//! windows.
//!
//! Memory is bounded (open segment buffers + open windows + one top-K
//! sketch per open window), and latency-to-answer is bounded by the
//! checkpoint cadence (entries become durable, hence tail-visible, at
//! every checkpoint) plus the window size and lateness allowance.
//!
//! # Exactly-once window output
//!
//! Every sealed window is written as its own durable file
//! (`windows/win-<index>.json`, via
//! [`write_file_durable`](ipfs_mon_tracestore::fault::write_file_durable):
//! tmp + fsync + atomic rename) *in index order*. That makes the window
//! directory itself the restart state:
//!
//! * the files present after a crash are always a dense prefix
//!   `win-0 .. win-(n-1)` — window `n` crashed before its rename, so it
//!   was never visible;
//! * on restart the service counts that prefix, replays the recovered
//!   chains through a fresh windowed sink, and *suppresses* the first `n`
//!   sealed windows instead of re-writing them — no duplicates;
//! * the replay re-derives window `n` and everything after it from
//!   exactly the bytes that survived the crash — no gaps. The tail only
//!   ever feeds *durable* bytes to the sink, so a window sealed before
//!   the crash was computed from data that is still there after it.
//!
//! Re-derived windows are bit-identical to the pre-crash ones as long as
//! the lateness allowance covers each chain's arrival disorder (zero for
//! the in-order collectors); the `service_soak` integration test
//! kill/restarts the service at every storage operation and asserts the
//! concatenated output equals a fault-free run's, byte for byte.
//!
//! [`ResumeCursor`]: ipfs_mon_tracestore::recover::ResumeCursor

use crate::trace::TraceEntry;
use ipfs_mon_bitswap::RequestType;
use ipfs_mon_obs as obs;
use ipfs_mon_simnet::time::SimDuration;
use ipfs_mon_tracestore::fault::write_file_durable;
use ipfs_mon_tracestore::recover::{recover_dataset_with, RecoveryReport};
use ipfs_mon_tracestore::sketch::{HeavyHitter, SpaceSaving};
use ipfs_mon_tracestore::window::{
    LatePolicy, WindowBounds, WindowResult, WindowSpec, WindowedSink,
};
use ipfs_mon_tracestore::{
    AnalysisSink, DatasetConfig, DatasetTail, DatasetWriter, RealStorage, SegmentError, Storage,
};
use ipfs_mon_types::Cid;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Name of the window-output directory inside the dataset directory.
pub const WINDOW_DIR_NAME: &str = "windows";

/// File name of sealed window `index`.
pub fn window_file_name(index: u64) -> String {
    format!("win-{index:08}.json")
}

/// Configuration of the service loop.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Collection-side configuration (rotation, checkpoint cadence,
    /// codec). The checkpoint cadence doubles as the latency-to-answer
    /// bound: entries become tail-visible when they become durable.
    pub dataset: DatasetConfig,
    /// Window shape of the online analysis.
    pub window: WindowSpec,
    /// Arrival-disorder allowance subtracted from the watermark.
    pub lateness: SimDuration,
    /// What to do with entries for already-sealed windows.
    pub policy: LatePolicy,
    /// Space-Saving capacity of the per-window top-CID sketch.
    pub top_k: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            dataset: DatasetConfig::default(),
            window: WindowSpec::tumbling(SimDuration::from_mins(1)),
            lateness: SimDuration::ZERO,
            policy: LatePolicy::Drop,
            top_k: 8,
        }
    }
}

/// The per-window analysis the service runs: exact request-type totals
/// plus a Space-Saving top-K of requested CIDs — compact enough for one
/// JSON line per window, rich enough to answer the paper's "what is being
/// asked for right now" question continuously.
///
/// The sketch is kept *per monitor* and offset-merged in monitor order at
/// finish. Space-Saving estimates depend on arrival order, and the tail
/// interleaves chains differently depending on poll cadence (a restart
/// replays each chain in bulk; a live run alternates in small batches) —
/// but *within* a chain the order is fixed, so per-monitor sub-sketches
/// plus a deterministic merge make the summary identical across
/// restarts.
#[derive(Debug, Clone)]
pub struct ServiceWindowAccum {
    capacity: usize,
    want_have: u64,
    want_block: u64,
    cancel: u64,
    top_cids: std::collections::BTreeMap<usize, SpaceSaving<Cid>>,
}

impl ServiceWindowAccum {
    fn new(top_k: usize) -> Self {
        Self {
            capacity: top_k,
            want_have: 0,
            want_block: 0,
            cancel: 0,
            top_cids: std::collections::BTreeMap::new(),
        }
    }
}

impl AnalysisSink for ServiceWindowAccum {
    type Output = WindowSummary;

    fn consume(&mut self, entry: TraceEntry) {
        match entry.request_type {
            RequestType::WantHave => self.want_have += 1,
            RequestType::WantBlock => self.want_block += 1,
            RequestType::Cancel => self.cancel += 1,
        }
        if entry.is_request() {
            self.top_cids
                .entry(entry.monitor)
                .or_insert_with(|| SpaceSaving::new(self.capacity))
                .record(&entry.cid);
        }
    }

    fn combine(&mut self, other: Self) {
        self.want_have += other.want_have;
        self.want_block += other.want_block;
        self.cancel += other.cancel;
        for (monitor, sketch) in other.top_cids {
            match self.top_cids.entry(monitor) {
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().merge(sketch)
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(sketch);
                }
            }
        }
    }

    fn finish(self) -> WindowSummary {
        // Monitor order is fixed, so the merged summary is independent of
        // how the tail interleaved the chains.
        let mut sketches = self.top_cids.into_values();
        let mut merged = sketches
            .next()
            .unwrap_or_else(|| SpaceSaving::new(self.capacity));
        for sketch in sketches {
            merged.merge(sketch);
        }
        let top = merged.finish();
        WindowSummary {
            want_have: self.want_have,
            want_block: self.want_block,
            cancel: self.cancel,
            top_cids: top.entries,
        }
    }
}

/// One sealed window's analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSummary {
    /// `WANT_HAVE` entries in the window.
    pub want_have: u64,
    /// `WANT_BLOCK` entries in the window.
    pub want_block: u64,
    /// `CANCEL` entries in the window.
    pub cancel: u64,
    /// Space-Saving top requested CIDs with guaranteed-error counts.
    pub top_cids: Vec<HeavyHitter<Cid>>,
}

/// Formats one sealed window as its canonical JSON line — the bytes
/// written to `windows/win-<index>.json` and surfaced by
/// [`MonitorService::poll`]. Deterministic: equal windows format to equal
/// bytes.
pub fn format_window_line(result: &WindowResult<WindowSummary>) -> String {
    let mut line = format!(
        "{{\"index\":{},\"start_ms\":{},\"end_ms\":{},\"entries\":{},\"want_have\":{},\"want_block\":{},\"cancel\":{},\"top_cids\":[",
        result.bounds.index,
        result.bounds.start.as_millis(),
        result.bounds.end.as_millis(),
        result.entries,
        result.output.want_have,
        result.output.want_block,
        result.output.cancel,
    );
    for (i, hh) in result.output.top_cids.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        // CID string forms are base32/base58 — no JSON escaping needed.
        line.push_str(&format!(
            "{{\"cid\":\"{}\",\"count\":{},\"error\":{}}}",
            hh.key, hh.count, hh.error
        ));
    }
    line.push_str("]}");
    line
}

/// Shared state of the window emitter: the callback appending durable
/// window files, suppression of windows already emitted by a previous
/// incarnation, and the error channel back to the service loop (the
/// callback itself cannot return one).
struct EmitState {
    storage: Arc<dyn Storage>,
    window_dir: PathBuf,
    /// Windows `0..skip_below` are already durable from a previous run:
    /// re-derived, verified dense, but not re-written.
    skip_below: u64,
    /// Next window index expected from the sink (sealing is dense).
    next: u64,
    emitted: u64,
    skipped: u64,
    /// JSON lines of windows sealed since the last drain.
    lines: Vec<String>,
    error: Option<SegmentError>,
}

impl EmitState {
    fn emit(&mut self, result: WindowResult<WindowSummary>) {
        if self.error.is_some() {
            return;
        }
        let index = result.bounds.index;
        assert_eq!(
            index, self.next,
            "windowed sink sealed out of order (dense emission invariant)"
        );
        self.next += 1;
        let line = format_window_line(&result);
        if index < self.skip_below {
            self.skipped += 1;
            obs::counter!("service.windows_skipped").incr();
            return;
        }
        let path = self.window_dir.join(window_file_name(index));
        match write_file_durable(self.storage.as_ref(), &path, line.as_bytes()) {
            Ok(()) => {
                self.emitted += 1;
                obs::counter!("service.windows_emitted").incr();
                self.lines.push(line);
            }
            Err(error) => self.error = Some(SegmentError::Io(error)),
        }
    }
}

/// Aggregate report of one service incarnation, from
/// [`MonitorService::finish`].
#[derive(Debug)]
pub struct ServiceReport {
    /// Windows written durably by *this* incarnation.
    pub windows_emitted: u64,
    /// Windows re-derived but suppressed (already durable before this
    /// incarnation started).
    pub windows_skipped: u64,
    /// Entries appended through [`MonitorService::ingest`] this
    /// incarnation.
    pub entries_ingested: u64,
    /// Entries the tail decoded into the analysis, per monitor (includes
    /// the replay of pre-crash data after a restart).
    pub entries_analyzed: Vec<u64>,
    /// Entries dropped as late under [`LatePolicy::Drop`].
    pub late_dropped: u64,
    /// Peak simultaneously-open windows — the analysis memory bound.
    pub max_open_windows: usize,
    /// JSON lines of the windows sealed during [`MonitorService::finish`].
    pub lines: Vec<String>,
}

type ServiceSink = WindowedSink<
    ServiceWindowAccum,
    Box<dyn Fn(&WindowBounds) -> ServiceWindowAccum + Send + Sync>,
>;

/// The continuous monitoring service. See the [module docs](self).
pub struct MonitorService {
    writer: Option<DatasetWriter>,
    tail: DatasetTail,
    sink: Option<ServiceSink>,
    emit: Arc<Mutex<EmitState>>,
    entries_ingested: u64,
}

impl MonitorService {
    /// Opens (or re-opens after a crash) the service over `dir` with real
    /// storage. Returns the service and the recovery report of the
    /// opening scan — [`RecoveryReport::resume`] tells the caller where
    /// each chain continues.
    pub fn open(
        dir: impl AsRef<Path>,
        monitor_labels: Vec<String>,
        config: ServiceConfig,
    ) -> Result<(Self, RecoveryReport), SegmentError> {
        Self::open_with(dir, monitor_labels, config, Arc::new(RealStorage))
    }

    /// [`MonitorService::open`] through an explicit [`Storage`] — the
    /// fault-injection seam the kill/restart soak test drives.
    pub fn open_with(
        dir: impl AsRef<Path>,
        monitor_labels: Vec<String>,
        config: ServiceConfig,
        storage: Arc<dyn Storage>,
    ) -> Result<(Self, RecoveryReport), SegmentError> {
        let dir = dir.as_ref();
        storage.create_dir_all(dir)?;
        let recovery = recover_dataset_with(dir, storage.as_ref())?;
        let window_dir = dir.join(WINDOW_DIR_NAME);
        storage.create_dir_all(&window_dir)?;
        let skip_below = sweep_window_dir(&window_dir, storage.as_ref())?;

        let writer = if recovery.manifest.monitor_labels.is_empty() {
            DatasetWriter::create_with(
                dir,
                monitor_labels.clone(),
                config.dataset,
                Arc::clone(&storage),
            )?
        } else {
            if recovery.manifest.monitor_labels != monitor_labels {
                return Err(SegmentError::InvalidConfig(format!(
                    "service reopened with labels {:?} over a dataset of {:?}",
                    monitor_labels, recovery.manifest.monitor_labels
                )));
            }
            DatasetWriter::resume(
                dir,
                &recovery.manifest,
                config.dataset,
                Arc::clone(&storage),
            )?
        };
        let monitors = monitor_labels.len();
        let tail = DatasetTail::open(dir, monitors);
        let emit = Arc::new(Mutex::new(EmitState {
            storage,
            window_dir,
            skip_below,
            next: 0,
            emitted: 0,
            skipped: 0,
            lines: Vec::new(),
            error: None,
        }));
        let callback_emit = Arc::clone(&emit);
        let top_k = config.top_k;
        let factory: Box<dyn Fn(&WindowBounds) -> ServiceWindowAccum + Send + Sync> =
            Box::new(move |_| ServiceWindowAccum::new(top_k));
        let sink = WindowedSink::with_callback(
            monitors,
            config.window,
            config.lateness,
            config.policy,
            factory,
            move |result| {
                callback_emit
                    .lock()
                    .expect("emit state poisoned")
                    .emit(result)
            },
        );
        obs::counter!("service.opens").incr();
        obs::gauge!("service.windows_durable").set(skip_below);
        Ok((
            Self {
                writer: Some(writer),
                tail,
                sink: Some(sink),
                emit,
                entries_ingested: 0,
            },
            recovery,
        ))
    }

    /// Appends one entry to the collection side (rotation and
    /// checkpointing per [`DatasetConfig`]). The entry becomes visible to
    /// the analysis once durable — at the next checkpoint or rotation.
    pub fn ingest(&mut self, entry: &TraceEntry) -> Result<(), SegmentError> {
        self.writer
            .as_mut()
            .expect("service already finished")
            .append(entry)?;
        self.entries_ingested += 1;
        Ok(())
    }

    /// Forces a checkpoint: everything ingested so far becomes durable
    /// and tail-visible.
    pub fn checkpoint(&mut self) -> Result<(), SegmentError> {
        self.writer
            .as_mut()
            .expect("service already finished")
            .checkpoint()?;
        Ok(())
    }

    /// Windows already durable when this incarnation opened.
    pub fn windows_durable_at_open(&self) -> u64 {
        self.emit.lock().expect("emit state poisoned").skip_below
    }

    /// Drives the analysis forward: decodes every newly durable chunk
    /// frame into the windowed sink and returns the JSON lines of the
    /// windows sealed by this poll (suppressed replayed windows excluded).
    pub fn poll(&mut self) -> Result<Vec<String>, SegmentError> {
        let sink = self.sink.as_mut().expect("service already finished");
        self.tail.poll(|entry| sink.consume(entry))?;
        obs::counter!("service.polls").incr();
        let mut emit = self.emit.lock().expect("emit state poisoned");
        if let Some(error) = emit.error.take() {
            return Err(error);
        }
        Ok(std::mem::take(&mut emit.lines))
    }

    /// Finishes the incarnation cleanly: seals the dataset (manifest),
    /// drains the tail, seals every remaining window, and reports.
    pub fn finish(mut self) -> Result<ServiceReport, SegmentError> {
        let writer = self.writer.take().expect("service already finished");
        writer.finish()?;
        let mut sink = self.sink.take().expect("service already finished");
        self.tail.poll(|entry| sink.consume(entry))?;
        let windowed = sink.finish();
        let mut emit = self.emit.lock().expect("emit state poisoned");
        if let Some(error) = emit.error.take() {
            return Err(error);
        }
        obs::gauge!("service.windows_durable").set(emit.skip_below + emit.emitted);
        Ok(ServiceReport {
            windows_emitted: emit.emitted,
            windows_skipped: emit.skipped,
            entries_ingested: self.entries_ingested,
            entries_analyzed: self.tail.entries_read(),
            late_dropped: windowed.late_dropped,
            max_open_windows: windowed.max_open_windows,
            lines: std::mem::take(&mut emit.lines),
        })
    }
}

/// Scans the window directory: sweeps stale durable-write temp files and
/// returns the length of the dense `win-0..n` prefix already present —
/// the windows a previous incarnation made durable.
fn sweep_window_dir(window_dir: &Path, storage: &dyn Storage) -> Result<u64, SegmentError> {
    let mut indexes = Vec::new();
    for entry in std::fs::read_dir(window_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            storage.remove_file(&entry.path())?;
            continue;
        }
        if let Some(index) = name
            .strip_prefix("win-")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            indexes.push(index);
        }
    }
    indexes.sort_unstable();
    // Dense prefix: windows are written in index order through atomic
    // renames, so a gap can only follow external tampering; everything
    // past it is re-derived (and overwritten) rather than trusted.
    let mut dense = 0u64;
    for index in indexes {
        if index == dense {
            dense += 1;
        } else {
            break;
        }
    }
    Ok(dense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EntryFlags;
    use ipfs_mon_simnet::time::SimTime;
    use ipfs_mon_tracestore::SegmentConfig;
    use ipfs_mon_types::{Country, Multiaddr, Multicodec, PeerId, Transport};

    fn entry(ms: u64, monitor: usize) -> TraceEntry {
        TraceEntry {
            timestamp: SimTime::from_millis(ms),
            peer: PeerId::derived(4, ms % 7),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::De),
            request_type: if ms % 3 == 0 {
                RequestType::WantBlock
            } else {
                RequestType::WantHave
            },
            cid: Cid::new_v1(Multicodec::Raw, &[(ms % 4) as u8]),
            monitor,
            flags: EntryFlags::default(),
        }
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            dataset: DatasetConfig {
                segment: SegmentConfig {
                    chunk_capacity: 8,
                    ..SegmentConfig::default()
                },
                rotate_after_entries: 40,
                checkpoint_after_entries: 16,
            },
            window: WindowSpec::tumbling(SimDuration::from_secs(1)),
            lateness: SimDuration::ZERO,
            policy: LatePolicy::Strict,
            top_k: 4,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("svc-{tag}-{}", std::process::id()))
    }

    #[test]
    fn service_emits_dense_window_files() {
        let dir = temp_dir("dense");
        std::fs::remove_dir_all(&dir).ok();
        let labels = vec!["us".to_string(), "de".to_string()];
        let (mut service, recovery) = MonitorService::open(&dir, labels, config()).unwrap();
        assert!(recovery.manifest.monitor_labels.is_empty());
        let mut lines = Vec::new();
        for i in 0..200u64 {
            for m in 0..2 {
                service.ingest(&entry(i * 40, m)).unwrap();
            }
            if i % 25 == 0 {
                lines.extend(service.poll().unwrap());
            }
        }
        let report = service.finish().unwrap();
        lines.extend(report.lines.iter().cloned());
        // 200 entries at 40 ms apart = just under 8 s of data = 8 windows.
        assert_eq!(report.windows_emitted, 8);
        assert_eq!(report.windows_skipped, 0);
        assert_eq!(report.entries_ingested, 400);
        assert_eq!(report.entries_analyzed, vec![200, 200]);
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"index\":{i},")));
            let on_disk =
                std::fs::read_to_string(dir.join(WINDOW_DIR_NAME).join(window_file_name(i as u64)))
                    .unwrap();
            assert_eq!(&on_disk, line);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopening_a_finished_service_skips_all_windows() {
        let dir = temp_dir("reopen");
        std::fs::remove_dir_all(&dir).ok();
        let labels = vec!["solo".to_string()];
        let (mut service, _) = MonitorService::open(&dir, labels.clone(), config()).unwrap();
        for i in 0..100u64 {
            service.ingest(&entry(i * 30, 0)).unwrap();
        }
        let first = service.finish().unwrap();
        assert!(first.windows_emitted > 0);

        // Reopen over the finished dataset: everything replays, nothing
        // is re-written, and no new windows appear.
        let (service, recovery) = MonitorService::open(&dir, labels, config()).unwrap();
        assert_eq!(recovery.manifest.total_entries(), 100);
        assert_eq!(service.windows_durable_at_open(), first.windows_emitted);
        let report = service.finish().unwrap();
        assert_eq!(report.windows_emitted, 0);
        assert_eq!(report.windows_skipped, first.windows_emitted);
        std::fs::remove_dir_all(&dir).ok();
    }
}
