//! The passive monitor: trace collection.
//!
//! A monitoring node (Sec. IV-A) is an ordinary-looking IPFS node that
//! accepts every incoming connection, never requests or serves data, and logs
//! every Bitswap wantlist entry it receives. [`MonitorCollector`] implements
//! the [`MonitorSink`] interface of the network simulator and accumulates the
//! resulting [`MonitoringDataset`]; in a real deployment the same component
//! would sit inside a modified IPFS client, as the paper's implementation
//! does.

use crate::trace::{ConnectionRecord, EntryFlags, MonitoringDataset, TraceEntry};
use ipfs_mon_node::{BitswapObservation, MonitorSink};
use ipfs_mon_simnet::time::SimTime;
use ipfs_mon_types::{Multiaddr, PeerId};

/// Collects the observations of all monitoring nodes of a deployment.
#[derive(Debug, Clone)]
pub struct MonitorCollector {
    dataset: MonitoringDataset,
    /// Open connections per monitor: index into `dataset.connections`.
    open: Vec<std::collections::HashMap<PeerId, usize>>,
}

impl MonitorCollector {
    /// Creates a collector for monitors with the given labels.
    pub fn new(monitor_labels: Vec<String>) -> Self {
        let monitors = monitor_labels.len();
        Self {
            dataset: MonitoringDataset::new(monitor_labels),
            open: vec![std::collections::HashMap::new(); monitors],
        }
    }

    /// Convenience constructor matching the paper's two-monitor setup.
    pub fn us_de() -> Self {
        Self::new(vec!["us".into(), "de".into()])
    }

    /// Number of monitors.
    pub fn monitor_count(&self) -> usize {
        self.dataset.monitor_count()
    }

    /// Read access to the dataset collected so far.
    pub fn dataset(&self) -> &MonitoringDataset {
        &self.dataset
    }

    /// Consumes the collector and returns the dataset.
    pub fn into_dataset(self) -> MonitoringDataset {
        self.dataset
    }

    /// Total number of entries recorded so far.
    pub fn total_entries(&self) -> usize {
        self.dataset.total_entries()
    }
}

impl MonitorSink for MonitorCollector {
    fn record(&mut self, monitor: usize, observation: BitswapObservation) {
        self.dataset.entries[monitor].push(TraceEntry {
            timestamp: observation.timestamp,
            peer: observation.peer,
            address: observation.address,
            request_type: observation.request_type,
            cid: observation.cid,
            monitor,
            flags: EntryFlags::default(),
        });
    }

    fn peer_connected(&mut self, monitor: usize, peer: PeerId, address: Multiaddr, at: SimTime) {
        let index = self.dataset.connections.len();
        self.dataset.connections.push(ConnectionRecord {
            monitor,
            peer,
            address,
            connected_at: at,
            disconnected_at: None,
        });
        self.open[monitor].insert(peer, index);
    }

    fn peer_disconnected(&mut self, monitor: usize, peer: PeerId, at: SimTime) {
        if let Some(index) = self.open[monitor].remove(&peer) {
            self.dataset.connections[index].disconnected_at = Some(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipfs_mon_bitswap::RequestType;
    use ipfs_mon_types::{Cid, Country, Multicodec, Transport};

    fn observation(secs: u64, peer: u64) -> BitswapObservation {
        BitswapObservation {
            timestamp: SimTime::from_secs(secs),
            peer: PeerId::derived(7, peer),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::Nl),
            request_type: RequestType::WantHave,
            cid: Cid::new_v1(Multicodec::Raw, &[1]),
        }
    }

    #[test]
    fn records_entries_per_monitor() {
        let mut collector = MonitorCollector::us_de();
        collector.record(0, observation(1, 1));
        collector.record(1, observation(2, 2));
        collector.record(0, observation(3, 1));
        assert_eq!(collector.total_entries(), 3);
        assert_eq!(collector.dataset().entries[0].len(), 2);
        assert_eq!(collector.dataset().entries[1].len(), 1);
        assert_eq!(collector.dataset().monitor_labels, vec!["us", "de"]);
    }

    #[test]
    fn tracks_connection_lifetimes() {
        let mut collector = MonitorCollector::us_de();
        let peer = PeerId::derived(7, 9);
        let addr = Multiaddr::new(1, 1, Transport::Tcp, Country::Us);
        collector.peer_connected(0, peer, addr, SimTime::from_secs(10));
        collector.peer_disconnected(0, peer, SimTime::from_secs(50));
        // Reconnection creates a second record.
        collector.peer_connected(0, peer, addr, SimTime::from_secs(100));
        let dataset = collector.into_dataset();
        assert_eq!(dataset.connections.len(), 2);
        assert_eq!(
            dataset.connections[0].disconnected_at,
            Some(SimTime::from_secs(50))
        );
        assert_eq!(dataset.connections[1].disconnected_at, None);
        assert!(dataset.peer_set_at(0, SimTime::from_secs(200)).contains(&peer));
        assert!(!dataset.peer_set_at(0, SimTime::from_secs(60)).contains(&peer));
    }

    #[test]
    fn disconnect_of_unknown_peer_is_ignored() {
        let mut collector = MonitorCollector::new(vec!["m".into()]);
        collector.peer_disconnected(0, PeerId::derived(1, 1), SimTime::from_secs(1));
        assert!(collector.dataset().connections.is_empty());
    }
}
