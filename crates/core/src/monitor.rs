//! The passive monitor: trace collection.
//!
//! A monitoring node (Sec. IV-A) is an ordinary-looking IPFS node that
//! accepts every incoming connection, never requests or serves data, and logs
//! every Bitswap wantlist entry it receives. [`MonitorCollector`] implements
//! the [`MonitorSink`] interface of the network simulator and accumulates the
//! resulting [`MonitoringDataset`]; in a real deployment the same component
//! would sit inside a modified IPFS client, as the paper's implementation
//! does.

use crate::trace::{ConnectionRecord, EntryFlags, MonitoringDataset, TraceEntry};
use ipfs_mon_node::{BitswapObservation, MonitorSink};
use ipfs_mon_obs as obs;
use ipfs_mon_simnet::time::SimTime;
use ipfs_mon_tracestore::{
    DatasetConfig, DatasetSummary, DatasetWriter, SegmentConfig, SegmentError, SegmentSummary,
    TraceWriter,
};
use ipfs_mon_types::{Multiaddr, PeerId};
use std::io::Write;
use std::path::Path;

/// Collects the observations of all monitoring nodes of a deployment.
#[derive(Debug, Clone)]
pub struct MonitorCollector {
    dataset: MonitoringDataset,
    /// Open connections per monitor: index into `dataset.connections`.
    open: Vec<std::collections::HashMap<PeerId, usize>>,
}

impl MonitorCollector {
    /// Creates a collector for monitors with the given labels.
    pub fn new(monitor_labels: Vec<String>) -> Self {
        let monitors = monitor_labels.len();
        Self {
            dataset: MonitoringDataset::new(monitor_labels),
            open: vec![std::collections::HashMap::new(); monitors],
        }
    }

    /// Convenience constructor matching the paper's two-monitor setup.
    pub fn us_de() -> Self {
        Self::new(vec!["us".into(), "de".into()])
    }

    /// Number of monitors.
    pub fn monitor_count(&self) -> usize {
        self.dataset.monitor_count()
    }

    /// Read access to the dataset collected so far.
    pub fn dataset(&self) -> &MonitoringDataset {
        &self.dataset
    }

    /// Consumes the collector and returns the dataset.
    pub fn into_dataset(self) -> MonitoringDataset {
        self.dataset
    }

    /// Total number of entries recorded so far.
    pub fn total_entries(&self) -> usize {
        self.dataset.total_entries()
    }
}

impl MonitorSink for MonitorCollector {
    fn record(&mut self, monitor: usize, observation: BitswapObservation) {
        // Observations arrive orders of magnitude less often than sim
        // events, so an unbatched obs bump per record is within budget.
        obs::counter!("collect.observations").incr();
        self.dataset.entries[monitor].push(TraceEntry {
            timestamp: observation.timestamp,
            peer: observation.peer,
            address: observation.address,
            request_type: observation.request_type,
            cid: observation.cid,
            monitor,
            flags: EntryFlags::default(),
        });
    }

    fn peer_connected(&mut self, monitor: usize, peer: PeerId, address: Multiaddr, at: SimTime) {
        let index = self.dataset.connections.len();
        self.dataset.connections.push(ConnectionRecord {
            monitor,
            peer,
            address,
            connected_at: at,
            disconnected_at: None,
        });
        self.open[monitor].insert(peer, index);
    }

    fn peer_disconnected(&mut self, monitor: usize, peer: PeerId, at: SimTime) {
        if let Some(index) = self.open[monitor].remove(&peer) {
            self.dataset.connections[index].disconnected_at = Some(at);
        }
    }
}

/// Per-monitor open-connection bookkeeping shared by the spilling sinks.
///
/// Encapsulates the two subtle rules both must agree on with
/// [`MonitorCollector`]: a reconnect without an observed disconnect flushes
/// the displaced record still open-ended, and records left open at the end
/// drain in a deterministic order so identical runs produce byte-identical
/// storage (HashMap iteration order is randomized per process).
struct OpenConnections {
    per_monitor: Vec<std::collections::HashMap<PeerId, ConnectionRecord>>,
}

impl OpenConnections {
    fn new(monitors: usize) -> Self {
        Self {
            per_monitor: vec![std::collections::HashMap::new(); monitors],
        }
    }

    /// Registers a connect; returns a displaced, still-open record (reconnect
    /// without observed disconnect) the caller must flush to storage.
    fn connect(
        &mut self,
        monitor: usize,
        peer: PeerId,
        address: Multiaddr,
        at: SimTime,
    ) -> Option<ConnectionRecord> {
        self.per_monitor[monitor].insert(
            peer,
            ConnectionRecord {
                monitor,
                peer,
                address,
                connected_at: at,
                disconnected_at: None,
            },
        )
    }

    /// Registers a disconnect; returns the closed record to flush, if the
    /// peer was known.
    fn disconnect(
        &mut self,
        monitor: usize,
        peer: PeerId,
        at: SimTime,
    ) -> Option<ConnectionRecord> {
        self.per_monitor[monitor].remove(&peer).map(|mut record| {
            record.disconnected_at = Some(at);
            record
        })
    }

    /// Drains every still-open record (no disconnect time, as
    /// [`MonitorCollector`] leaves them) in deterministic order.
    fn drain_sorted(&mut self) -> Vec<ConnectionRecord> {
        let mut records = Vec::new();
        for per_monitor in &mut self.per_monitor {
            let start = records.len();
            records.extend(per_monitor.drain().map(|(_, record)| record));
            records[start..].sort_by_key(|r| (r.connected_at, r.peer));
        }
        records
    }
}

/// A [`MonitorSink`] that spills every observation straight into a tracestore
/// segment instead of accumulating it in memory.
///
/// This is the collection mode for experiment scales where a
/// [`MonitorCollector`] would not fit in RAM: entries go to the sharded
/// [`TraceWriter`] (one columnar chunk at a time), only open connections and
/// the footer metadata stay resident. Call [`SpillingCollector::finish`] to
/// close the segment; the result can be re-read with
/// [`ipfs_mon_tracestore::TraceReader`] and preprocessed with
/// [`crate::preprocess::flag_segment`] without ever holding the full trace.
pub struct SpillingCollector<W: Write> {
    writer: TraceWriter<W>,
    open: OpenConnections,
    /// First write error, if any (the [`MonitorSink`] interface is
    /// infallible; errors surface in [`SpillingCollector::finish`]).
    error: Option<SegmentError>,
}

impl<W: Write> SpillingCollector<W> {
    /// Creates a collector writing a segment to `sink`.
    pub fn new(
        monitor_labels: Vec<String>,
        sink: W,
        config: SegmentConfig,
    ) -> Result<Self, SegmentError> {
        let monitors = monitor_labels.len();
        Ok(Self {
            writer: TraceWriter::new(sink, monitor_labels, config)?,
            open: OpenConnections::new(monitors),
            error: None,
        })
    }

    /// Convenience constructor matching the paper's two-monitor setup.
    pub fn us_de(sink: W, config: SegmentConfig) -> Result<Self, SegmentError> {
        Self::new(vec!["us".into(), "de".into()], sink, config)
    }

    /// Number of monitors.
    pub fn monitor_count(&self) -> usize {
        self.writer.monitor_count()
    }

    /// Entries spilled or buffered so far.
    pub fn total_entries(&self) -> u64 {
        self.writer.total_entries()
    }

    /// Closes still-open connections into the footer (with no disconnect
    /// time, as [`MonitorCollector`] does), flushes all shards, and writes
    /// the segment footer.
    pub fn finish(mut self) -> Result<SegmentSummary, SegmentError> {
        if let Some(error) = self.error {
            return Err(error);
        }
        for record in self.open.drain_sorted() {
            self.writer.record_connection(record);
        }
        self.writer.finish()
    }
}

impl<W: Write> MonitorSink for SpillingCollector<W> {
    fn record(&mut self, monitor: usize, observation: BitswapObservation) {
        if self.error.is_some() {
            return;
        }
        obs::counter!("collect.observations").incr();
        let entry = TraceEntry {
            timestamp: observation.timestamp,
            peer: observation.peer,
            address: observation.address,
            request_type: observation.request_type,
            cid: observation.cid,
            monitor,
            flags: EntryFlags::default(),
        };
        if let Err(error) = self.writer.append(&entry) {
            self.error = Some(error);
        }
    }

    fn peer_connected(&mut self, monitor: usize, peer: PeerId, address: Multiaddr, at: SimTime) {
        if let Some(record) = self.open.connect(monitor, peer, address, at) {
            self.writer.record_connection(record);
        }
    }

    fn peer_disconnected(&mut self, monitor: usize, peer: PeerId, at: SimTime) {
        if let Some(record) = self.open.disconnect(monitor, peer, at) {
            self.writer.record_connection(record);
        }
    }
}

/// A [`MonitorSink`] that spills observations into a multi-segment dataset —
/// one rotating segment chain per monitor plus a manifest, the collection
/// mode for long-horizon deployments where even one segment file per monitor
/// would grow unwieldy.
///
/// Open-connection bookkeeping matches [`SpillingCollector`]; entries and
/// closed connections go straight to the monitor's current segment. Call
/// [`ManifestCollector::finish`] to close all chains and write the manifest;
/// re-read everything with [`ipfs_mon_tracestore::ManifestReader`] and run
/// the analyses through [`ipfs_mon_tracestore::TraceSource`] without ever
/// materializing the trace.
pub struct ManifestCollector {
    writer: DatasetWriter,
    open: OpenConnections,
    /// First write error, if any (surfaced in [`ManifestCollector::finish`]).
    error: Option<SegmentError>,
}

impl ManifestCollector {
    /// Creates a collector writing a multi-segment dataset into `dir`.
    pub fn new(
        monitor_labels: Vec<String>,
        dir: impl AsRef<Path>,
        config: DatasetConfig,
    ) -> Result<Self, SegmentError> {
        let monitors = monitor_labels.len();
        Ok(Self {
            writer: DatasetWriter::create(dir, monitor_labels, config)?,
            open: OpenConnections::new(monitors),
            error: None,
        })
    }

    /// Convenience constructor matching the paper's two-monitor setup.
    pub fn us_de(dir: impl AsRef<Path>, config: DatasetConfig) -> Result<Self, SegmentError> {
        Self::new(vec!["us".into(), "de".into()], dir, config)
    }

    /// Number of monitors.
    pub fn monitor_count(&self) -> usize {
        self.writer.monitor_count()
    }

    /// Entries spilled or buffered so far.
    pub fn total_entries(&self) -> u64 {
        self.writer.total_entries()
    }

    /// Seals a durability checkpoint of the dataset being collected: fsyncs
    /// every open segment chain and atomically writes `manifest.ckpt`, so a
    /// crash after this point loses nothing recorded before it (see
    /// [`ipfs_mon_tracestore::DatasetWriter::checkpoint`] and
    /// [`ipfs_mon_tracestore::recover_dataset`]). An earlier latched write
    /// error is returned instead of checkpointing over bad state, and a
    /// checkpoint failure latches the collector like any other write
    /// failure — either way the collector stays dead afterwards and
    /// [`ManifestCollector::finish`] reports the condition too.
    pub fn checkpoint(&mut self) -> Result<(), SegmentError> {
        if let Some(error) = self.error.take() {
            self.error = Some(SegmentError::Corrupt(
                "collector disabled by an earlier write error".into(),
            ));
            return Err(error);
        }
        if let Err(error) = self.writer.checkpoint() {
            self.error = Some(SegmentError::Corrupt(format!(
                "collector disabled by a failed checkpoint: {error}"
            )));
            return Err(error);
        }
        Ok(())
    }

    /// Closes still-open connections (with no disconnect time, as
    /// [`MonitorCollector`] does), finishes every segment chain, and writes
    /// the manifest.
    pub fn finish(mut self) -> Result<DatasetSummary, SegmentError> {
        if let Some(error) = self.error {
            return Err(error);
        }
        for record in self.open.drain_sorted() {
            self.writer.record_connection(record)?;
        }
        self.writer.finish()
    }

    /// Stores a closed/displaced connection record, latching the first error.
    fn flush_record(&mut self, record: ConnectionRecord) {
        if self.error.is_none() {
            if let Err(error) = self.writer.record_connection(record) {
                self.error = Some(error);
            }
        }
    }
}

impl MonitorSink for ManifestCollector {
    fn record(&mut self, monitor: usize, observation: BitswapObservation) {
        if self.error.is_some() {
            return;
        }
        obs::counter!("collect.observations").incr();
        let entry = TraceEntry {
            timestamp: observation.timestamp,
            peer: observation.peer,
            address: observation.address,
            request_type: observation.request_type,
            cid: observation.cid,
            monitor,
            flags: EntryFlags::default(),
        };
        if let Err(error) = self.writer.append(&entry) {
            self.error = Some(error);
        }
    }

    fn peer_connected(&mut self, monitor: usize, peer: PeerId, address: Multiaddr, at: SimTime) {
        if let Some(record) = self.open.connect(monitor, peer, address, at) {
            self.flush_record(record);
        }
    }

    fn peer_disconnected(&mut self, monitor: usize, peer: PeerId, at: SimTime) {
        if let Some(record) = self.open.disconnect(monitor, peer, at) {
            self.flush_record(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipfs_mon_bitswap::RequestType;
    use ipfs_mon_types::{Cid, Country, Multicodec, Transport};

    fn observation(secs: u64, peer: u64) -> BitswapObservation {
        BitswapObservation {
            timestamp: SimTime::from_secs(secs),
            peer: PeerId::derived(7, peer),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::Nl),
            request_type: RequestType::WantHave,
            cid: Cid::new_v1(Multicodec::Raw, &[1]),
        }
    }

    #[test]
    fn records_entries_per_monitor() {
        let mut collector = MonitorCollector::us_de();
        collector.record(0, observation(1, 1));
        collector.record(1, observation(2, 2));
        collector.record(0, observation(3, 1));
        assert_eq!(collector.total_entries(), 3);
        assert_eq!(collector.dataset().entries[0].len(), 2);
        assert_eq!(collector.dataset().entries[1].len(), 1);
        assert_eq!(collector.dataset().monitor_labels, vec!["us", "de"]);
    }

    #[test]
    fn tracks_connection_lifetimes() {
        let mut collector = MonitorCollector::us_de();
        let peer = PeerId::derived(7, 9);
        let addr = Multiaddr::new(1, 1, Transport::Tcp, Country::Us);
        collector.peer_connected(0, peer, addr, SimTime::from_secs(10));
        collector.peer_disconnected(0, peer, SimTime::from_secs(50));
        // Reconnection creates a second record.
        collector.peer_connected(0, peer, addr, SimTime::from_secs(100));
        let dataset = collector.into_dataset();
        assert_eq!(dataset.connections.len(), 2);
        assert_eq!(
            dataset.connections[0].disconnected_at,
            Some(SimTime::from_secs(50))
        );
        assert_eq!(dataset.connections[1].disconnected_at, None);
        assert!(dataset
            .peer_set_at(0, SimTime::from_secs(200))
            .contains(&peer));
        assert!(!dataset
            .peer_set_at(0, SimTime::from_secs(60))
            .contains(&peer));
    }

    #[test]
    fn disconnect_of_unknown_peer_is_ignored() {
        let mut collector = MonitorCollector::new(vec!["m".into()]);
        collector.peer_disconnected(0, PeerId::derived(1, 1), SimTime::from_secs(1));
        assert!(collector.dataset().connections.is_empty());
    }

    #[test]
    fn spilling_collector_matches_in_memory_collector() {
        // Drive the same observation sequence through both sinks; the
        // segment must reconstruct into the in-memory collector's dataset.
        let mut in_memory = MonitorCollector::us_de();
        let mut bytes = Vec::new();
        let mut spilling = SpillingCollector::us_de(
            &mut bytes,
            ipfs_mon_tracestore::SegmentConfig {
                chunk_capacity: 4,
                ..SegmentConfig::default()
            },
        )
        .unwrap();

        let peer = PeerId::derived(7, 1);
        let addr = Multiaddr::new(9, 9, Transport::Tcp, Country::De);
        for sink_events in [&mut in_memory as &mut dyn MonitorSink, &mut spilling] {
            sink_events.peer_connected(0, peer, addr, SimTime::from_secs(0));
            for i in 0..10u64 {
                sink_events.record(i as usize % 2, observation(i + 1, i % 3));
            }
            sink_events.peer_disconnected(0, peer, SimTime::from_secs(50));
            sink_events.peer_connected(1, peer, addr, SimTime::from_secs(60));
        }

        let summary = spilling.finish().unwrap();
        assert_eq!(summary.total_entries, 10);
        assert_eq!(summary.connections, 2);

        let expected = in_memory.into_dataset();
        let roundtripped = crate::trace::MonitoringDataset::from_segment_bytes(&bytes).unwrap();
        assert_eq!(roundtripped.monitor_labels, expected.monitor_labels);
        assert_eq!(roundtripped.entries, expected.entries);
        // Connection order may differ (open connections drain from a map at
        // finish); compare as sets.
        let mut a = roundtripped.connections.clone();
        let mut b = expected.connections.clone();
        let key = |c: &crate::trace::ConnectionRecord| {
            (c.monitor, c.peer, c.connected_at, c.disconnected_at)
        };
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }
}
