//! Privacy attacks built on the monitoring methodology (Sec. VI).
//!
//! The same data that powers the benign analyses enables three attacks on
//! user privacy, all implemented here against the collected traces and the
//! simulated network:
//!
//! * **IDW — Identifying Data Wanters**: list the node IDs (and request
//!   times) that asked for a given CID.
//! * **TNW — Tracking Node Wants**: list the CIDs (and request times) a given
//!   node asked for.
//! * **TPI — Testing for Past Interests**: probe whether a target node holds a
//!   given CID in its cache, revealing whether it recently downloaded it.
//! * **Gateway probing** (Sec. VI-B): de-anonymize the IPFS nodes behind
//!   public HTTP gateways by registering the monitor as the only DHT provider
//!   for a freshly generated random block and requesting that block through
//!   the gateway's HTTP side; the Bitswap request that arrives at the monitor
//!   carries the gateway node's peer ID.
//!
//! Every trace-driven attack is a single-pass streaming scan: the `_stream`
//! variants consume any flagged entry iterator at constant memory, the
//! [`run_attacks_source`] harness evaluates IDW, TNW and TPI together in one
//! pass over any [`TraceSource`] (in-memory dataset, segment, or
//! multi-segment manifest), and the historical [`UnifiedTrace`] entry points
//! are thin wrappers over the streaming scans.

use crate::preprocess::{flag_source, PreprocessConfig};
use crate::trace::{TraceEntry, UnifiedTrace};
use ipfs_mon_blockstore::{Block, BuiltDag};
use ipfs_mon_node::{ContentSpec, GatewayRequestEvent, Network};
use ipfs_mon_simnet::rng::SimRng;
use ipfs_mon_simnet::time::SimTime;
use ipfs_mon_tracestore::{SegmentError, TraceSource};
use ipfs_mon_types::{Cid, Multicodec, PeerId};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::collections::{BTreeMap, HashMap, HashSet};

// ---------------------------------------------------------------------------
// IDW
// ---------------------------------------------------------------------------

/// One observation supporting an IDW result: a peer asked for the target CID.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WanterObservation {
    /// The requesting peer.
    pub peer: PeerId,
    /// When the request was observed.
    pub at: SimTime,
}

/// Runs the IDW attack over a flagged entry stream in one pass: all peers
/// observed requesting `cid`, with their request times (primary requests
/// only — repeats don't add information). Accepts owned entries or
/// references, so materialized traces scan without cloning.
pub fn identify_data_wanters_stream<I>(entries: I, cid: &Cid) -> Vec<WanterObservation>
where
    I: IntoIterator,
    I::Item: Borrow<TraceEntry>,
{
    let mut observations: Vec<WanterObservation> = entries
        .into_iter()
        .filter_map(|entry| {
            let e = entry.borrow();
            (e.flags.is_primary() && e.is_request() && e.cid == *cid).then_some(WanterObservation {
                peer: e.peer,
                at: e.timestamp,
            })
        })
        .collect();
    observations.sort_by_key(|o| (o.at, o.peer));
    observations
}

/// Runs the IDW attack against a materialized trace. Thin wrapper over
/// [`identify_data_wanters_stream`].
pub fn identify_data_wanters(trace: &UnifiedTrace, cid: &Cid) -> Vec<WanterObservation> {
    identify_data_wanters_stream(&trace.entries, cid)
}

// ---------------------------------------------------------------------------
// TNW
// ---------------------------------------------------------------------------

/// The request profile of one tracked node.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeWantProfile {
    /// CIDs the node requested, with all observed request times.
    pub wants: BTreeMap<Cid, Vec<SimTime>>,
}

impl NodeWantProfile {
    /// Number of distinct CIDs the node was observed requesting.
    pub fn distinct_cids(&self) -> usize {
        self.wants.len()
    }

    /// Total number of observed (primary) requests.
    pub fn total_requests(&self) -> usize {
        self.wants.values().map(Vec::len).sum()
    }
}

/// Runs the TNW attack over a flagged entry stream in one pass: everything
/// the target peer was observed requesting. Accepts owned entries or
/// references, so materialized traces scan without cloning.
pub fn track_node_wants_stream<I>(entries: I, target: &PeerId) -> NodeWantProfile
where
    I: IntoIterator,
    I::Item: Borrow<TraceEntry>,
{
    let mut profile = NodeWantProfile::default();
    for entry in entries.into_iter() {
        let e = entry.borrow();
        if e.flags.is_primary() && e.is_request() && e.peer == *target {
            profile
                .wants
                .entry(e.cid.clone())
                .or_default()
                .push(e.timestamp);
        }
    }
    profile
}

/// Runs the TNW attack against a materialized trace. Thin wrapper over
/// [`track_node_wants_stream`].
pub fn track_node_wants(trace: &UnifiedTrace, target: &PeerId) -> NodeWantProfile {
    track_node_wants_stream(&trace.entries, target)
}

// ---------------------------------------------------------------------------
// TPI
// ---------------------------------------------------------------------------

/// Outcome of a TPI probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TpiOutcome {
    /// The target answered the probe: the data is in its cache, so it was
    /// requested (or published) via that node in the recent past.
    CachedRecently,
    /// The target did not have the block.
    NotCached,
}

/// Runs the TPI attack against a node of the simulated network: send a probe
/// request for `cid` to the target and observe whether it can serve the
/// block. In the simulation this inspects the target's block store — exactly
/// the signal a real probe request would extract, since nodes serve cached
/// blocks to anyone who asks.
pub fn test_past_interest(network: &Network, target_node: usize, cid: &Cid) -> TpiOutcome {
    if network.node_has_block(target_node, cid) {
        TpiOutcome::CachedRecently
    } else {
        TpiOutcome::NotCached
    }
}

// ---------------------------------------------------------------------------
// One-pass attack suite over a TraceSource
// ---------------------------------------------------------------------------

/// The targets of one combined attack evaluation.
#[derive(Debug, Clone, Default)]
pub struct AttackTargets {
    /// CIDs to run IDW against.
    pub idw_cids: Vec<Cid>,
    /// Peers to run TNW against.
    pub tnw_peers: Vec<PeerId>,
    /// `(node index, CID)` pairs to probe with TPI.
    pub tpi_probes: Vec<(usize, Cid)>,
}

/// Results of a combined attack evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttackSuiteReport {
    /// IDW observations per target CID (same contents as
    /// [`identify_data_wanters`] per CID).
    pub idw: BTreeMap<Cid, Vec<WanterObservation>>,
    /// TNW profiles per target peer (same contents as [`track_node_wants`]
    /// per peer).
    pub tnw: BTreeMap<PeerId, NodeWantProfile>,
    /// TPI outcomes, in probe order.
    pub tpi: Vec<((usize, Cid), TpiOutcome)>,
}

/// Accumulates IDW and TNW results for many targets in a single scan.
#[derive(Debug, Clone, Default)]
pub struct AttackScan {
    idw: BTreeMap<Cid, Vec<WanterObservation>>,
    tnw: BTreeMap<PeerId, NodeWantProfile>,
}

impl AttackScan {
    /// Creates a scan for the given IDW and TNW targets.
    pub fn new(idw_cids: &[Cid], tnw_peers: &[PeerId]) -> Self {
        Self {
            idw: idw_cids.iter().map(|c| (c.clone(), Vec::new())).collect(),
            tnw: tnw_peers
                .iter()
                .map(|p| (*p, NodeWantProfile::default()))
                .collect(),
        }
    }

    /// Feeds one flagged entry through every trace-driven attack at once.
    pub fn observe(&mut self, entry: &TraceEntry) {
        if !entry.flags.is_primary() || !entry.is_request() {
            return;
        }
        if let Some(observations) = self.idw.get_mut(&entry.cid) {
            observations.push(WanterObservation {
                peer: entry.peer,
                at: entry.timestamp,
            });
        }
        if let Some(profile) = self.tnw.get_mut(&entry.peer) {
            profile
                .wants
                .entry(entry.cid.clone())
                .or_default()
                .push(entry.timestamp);
        }
    }

    /// Finalizes the per-target results (IDW observations sorted exactly as
    /// [`identify_data_wanters`] sorts them).
    pub fn finish(
        mut self,
    ) -> (
        BTreeMap<Cid, Vec<WanterObservation>>,
        BTreeMap<PeerId, NodeWantProfile>,
    ) {
        for observations in self.idw.values_mut() {
            observations.sort_by_key(|o| (o.at, o.peer));
        }
        (self.idw, self.tnw)
    }
}

/// Runs all three privacy attacks in one constant-memory pass over any
/// [`TraceSource`]: the source's merged stream is flagged on the fly and
/// scanned once for every IDW/TNW target simultaneously; TPI probes are
/// evaluated against the live network (they query node caches, not traces).
/// Per-target results are identical to the single-target entry points.
///
/// TPI probes without a network are an error — an archived-trace analysis
/// must not silently report zero probe outcomes as if none were requested.
pub fn run_attacks_source<T: TraceSource>(
    source: &T,
    config: PreprocessConfig,
    targets: &AttackTargets,
    network: Option<&Network>,
) -> Result<AttackSuiteReport, SegmentError> {
    if network.is_none() && !targets.tpi_probes.is_empty() {
        return Err(SegmentError::InvalidConfig(
            "TPI probes require a live network to query".into(),
        ));
    }
    let mut scan = AttackScan::new(&targets.idw_cids, &targets.tnw_peers);
    let mut stream = flag_source(source, config);
    for entry in &mut stream {
        scan.observe(&entry);
    }
    if let Some(error) = stream.take_source_error() {
        return Err(error);
    }
    let (idw, tnw) = scan.finish();
    let tpi = match network {
        Some(network) => targets
            .tpi_probes
            .iter()
            .map(|(node, cid)| {
                (
                    (*node, cid.clone()),
                    test_past_interest(network, *node, cid),
                )
            })
            .collect(),
        None => Vec::new(),
    };
    Ok(AttackSuiteReport { idw, tnw, tpi })
}

// ---------------------------------------------------------------------------
// Gateway probing
// ---------------------------------------------------------------------------

/// One prepared gateway probe (Sec. VI-B1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatewayProbe {
    /// Name of the probed gateway operator.
    pub operator_name: String,
    /// Index of the probed operator in the scenario.
    pub operator: usize,
    /// The unique random-content CID used for this probe.
    pub cid: Cid,
    /// When the HTTP request was issued.
    pub issued_at: SimTime,
}

/// Result of evaluating a probe against the collected trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatewayProbeResult {
    /// The probe this result belongs to.
    pub probe: GatewayProbe,
    /// Node IDs that requested the probe CID — the IPFS side of the gateway.
    pub discovered_peers: Vec<PeerId>,
}

/// Orchestrates gateway probing against a [`Network`] before it runs.
#[derive(Debug, Default)]
pub struct GatewayProber {
    probes: Vec<GatewayProbe>,
}

impl GatewayProber {
    /// Creates an empty prober.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares one probe: generates a unique block of random data, registers
    /// monitor `monitor` as its only DHT provider, and schedules an HTTP
    /// request for it through operator `operator` at time `at`.
    pub fn prepare_probe(
        &mut self,
        network: &mut Network,
        monitor: usize,
        operator: usize,
        at: SimTime,
        rng: &mut SimRng,
    ) -> GatewayProbe {
        // A unique random block → a CID nobody else will ever request.
        let mut payload = vec![0u8; 64];
        rng.fill_bytes(&mut payload);
        let block = Block::new(Multicodec::Raw, payload);
        let cid = block.cid().clone();
        let dag = BuiltDag {
            root: cid.clone(),
            total_size: block.logical_size(),
            blocks: vec![block],
        };
        let content = network.add_content(ContentSpec {
            dag,
            initial_providers: Vec::new(),
        });
        network.register_monitor_provider(monitor, content);
        network.schedule_gateway_request(GatewayRequestEvent {
            at,
            operator,
            content,
        });
        let probe = GatewayProbe {
            operator_name: network.scenario().operators[operator].name.clone(),
            operator,
            cid,
            issued_at: at,
        };
        self.probes.push(probe.clone());
        probe
    }

    /// Prepares one probe per operator of the scenario, spaced `spacing_secs`
    /// apart starting at `start`.
    pub fn probe_all_operators(
        &mut self,
        network: &mut Network,
        monitor: usize,
        start: SimTime,
        spacing_secs: u64,
        rng: &mut SimRng,
    ) -> usize {
        let operators = network.scenario().operators.len();
        for op in 0..operators {
            let at = SimTime::from_millis(start.as_millis() + op as u64 * spacing_secs * 1000);
            self.prepare_probe(network, monitor, op, at, rng);
        }
        operators
    }

    /// The prepared probes.
    pub fn probes(&self) -> &[GatewayProbe] {
        &self.probes
    }

    /// After the simulation ran, evaluates every probe against a raw entry
    /// stream in one pass: any peer that requested a probe CID is (part of)
    /// the gateway's IPFS side. Probe CIDs are unique random blocks, so raw
    /// (unflagged) entries are the right input. Accepts owned entries or
    /// references, so materialized traces scan without cloning.
    pub fn evaluate_stream<I>(&self, entries: I) -> Vec<GatewayProbeResult>
    where
        I: IntoIterator,
        I::Item: Borrow<TraceEntry>,
    {
        let mut by_cid: HashMap<&Cid, Vec<usize>> = HashMap::new();
        for (index, probe) in self.probes.iter().enumerate() {
            by_cid.entry(&probe.cid).or_default().push(index);
        }
        let mut discovered: Vec<HashSet<PeerId>> = vec![HashSet::new(); self.probes.len()];
        for entry in entries.into_iter() {
            let e = entry.borrow();
            if !e.is_request() {
                continue;
            }
            if let Some(indexes) = by_cid.get(&e.cid) {
                for &index in indexes {
                    discovered[index].insert(e.peer);
                }
            }
        }
        self.probes
            .iter()
            .zip(discovered)
            .map(|(probe, peers)| {
                let mut discovered: Vec<PeerId> = peers.into_iter().collect();
                discovered.sort();
                GatewayProbeResult {
                    probe: probe.clone(),
                    discovered_peers: discovered,
                }
            })
            .collect()
    }

    /// Evaluates every probe against any [`TraceSource`] without
    /// materializing the trace.
    pub fn evaluate_source<T: TraceSource>(
        &self,
        source: &T,
    ) -> Result<Vec<GatewayProbeResult>, SegmentError> {
        let mut entries = source.merged_entries();
        let results = self.evaluate_stream(&mut entries);
        if let Some(error) = entries.take_error() {
            return Err(error);
        }
        Ok(results)
    }

    /// Evaluates every probe against a materialized trace. Thin wrapper over
    /// [`GatewayProber::evaluate_stream`].
    pub fn evaluate(&self, trace: &UnifiedTrace) -> Vec<GatewayProbeResult> {
        self.evaluate_stream(&trace.entries)
    }
}

/// Cross-references probe results with the monitors' peer lists to find
/// operators running multiple nodes (the paper discovered 93 gateway node IDs
/// this way, 13 behind a single operator).
pub fn gateway_nodes_by_operator(
    results: &[GatewayProbeResult],
) -> BTreeMap<String, HashSet<PeerId>> {
    let mut map: BTreeMap<String, HashSet<PeerId>> = BTreeMap::new();
    for result in results {
        map.entry(result.probe.operator_name.clone())
            .or_default()
            .extend(result.discovered_peers.iter().copied());
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EntryFlags, TraceEntry};
    use ipfs_mon_bitswap::RequestType;
    use ipfs_mon_types::{Country, Multiaddr, Transport};

    fn entry(secs: u64, peer: u64, cid: u8, rtype: RequestType) -> TraceEntry {
        TraceEntry {
            timestamp: SimTime::from_secs(secs),
            peer: PeerId::derived(11, peer),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::Us),
            request_type: rtype,
            cid: Cid::new_v1(Multicodec::Raw, &[cid]),
            monitor: 0,
            flags: EntryFlags::default(),
        }
    }

    #[test]
    fn idw_lists_wanters_of_a_cid() {
        let trace = UnifiedTrace {
            entries: vec![
                entry(10, 1, 7, RequestType::WantHave),
                entry(20, 2, 7, RequestType::WantBlock),
                entry(30, 3, 8, RequestType::WantHave),
                entry(40, 1, 7, RequestType::Cancel),
            ],
        };
        let target = Cid::new_v1(Multicodec::Raw, &[7]);
        let wanters = identify_data_wanters(&trace, &target);
        assert_eq!(wanters.len(), 2);
        assert_eq!(wanters[0].peer, PeerId::derived(11, 1));
        assert_eq!(wanters[1].peer, PeerId::derived(11, 2));
    }

    #[test]
    fn tnw_profiles_a_target_node() {
        let trace = UnifiedTrace {
            entries: vec![
                entry(10, 1, 1, RequestType::WantHave),
                entry(20, 1, 2, RequestType::WantHave),
                entry(25, 1, 2, RequestType::WantHave),
                entry(30, 2, 3, RequestType::WantHave),
            ],
        };
        let profile = track_node_wants(&trace, &PeerId::derived(11, 1));
        assert_eq!(profile.distinct_cids(), 2);
        assert_eq!(profile.total_requests(), 3);
        assert!(profile
            .wants
            .contains_key(&Cid::new_v1(Multicodec::Raw, &[2])));
        // The other node's requests are not attributed to the target.
        assert!(!profile
            .wants
            .contains_key(&Cid::new_v1(Multicodec::Raw, &[3])));
    }

    #[test]
    fn flagged_repeats_do_not_inflate_profiles() {
        let mut repeat = entry(40, 1, 1, RequestType::WantHave);
        repeat.flags.rebroadcast = true;
        let trace = UnifiedTrace {
            entries: vec![entry(10, 1, 1, RequestType::WantHave), repeat],
        };
        let profile = track_node_wants(&trace, &PeerId::derived(11, 1));
        assert_eq!(profile.total_requests(), 1);
        let wanters = identify_data_wanters(&trace, &Cid::new_v1(Multicodec::Raw, &[1]));
        assert_eq!(wanters.len(), 1);
    }

    #[test]
    fn gateway_nodes_by_operator_merges_probe_results() {
        let probe = |name: &str, cid: u8| GatewayProbe {
            operator_name: name.into(),
            operator: 0,
            cid: Cid::new_v1(Multicodec::Raw, &[cid]),
            issued_at: SimTime::ZERO,
        };
        let results = vec![
            GatewayProbeResult {
                probe: probe("gw-a", 1),
                discovered_peers: vec![PeerId::derived(11, 1), PeerId::derived(11, 2)],
            },
            GatewayProbeResult {
                probe: probe("gw-a", 2),
                discovered_peers: vec![PeerId::derived(11, 2), PeerId::derived(11, 3)],
            },
            GatewayProbeResult {
                probe: probe("gw-b", 3),
                discovered_peers: vec![],
            },
        ];
        let map = gateway_nodes_by_operator(&results);
        assert_eq!(map["gw-a"].len(), 3);
        assert!(map["gw-b"].is_empty());
    }
}
