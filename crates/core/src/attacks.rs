//! Privacy attacks built on the monitoring methodology (Sec. VI).
//!
//! The same data that powers the benign analyses enables three attacks on
//! user privacy, all implemented here against the collected traces and the
//! simulated network:
//!
//! * **IDW — Identifying Data Wanters**: list the node IDs (and request
//!   times) that asked for a given CID.
//! * **TNW — Tracking Node Wants**: list the CIDs (and request times) a given
//!   node asked for.
//! * **TPI — Testing for Past Interests**: probe whether a target node holds a
//!   given CID in its cache, revealing whether it recently downloaded it.
//! * **Gateway probing** (Sec. VI-B): de-anonymize the IPFS nodes behind
//!   public HTTP gateways by registering the monitor as the only DHT provider
//!   for a freshly generated random block and requesting that block through
//!   the gateway's HTTP side; the Bitswap request that arrives at the monitor
//!   carries the gateway node's peer ID.

use crate::trace::UnifiedTrace;
use ipfs_mon_blockstore::{Block, BuiltDag};
use ipfs_mon_node::{ContentSpec, GatewayRequestEvent, Network};
use ipfs_mon_simnet::rng::SimRng;
use ipfs_mon_simnet::time::SimTime;
use ipfs_mon_types::{Cid, Multicodec, PeerId};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

// ---------------------------------------------------------------------------
// IDW
// ---------------------------------------------------------------------------

/// One observation supporting an IDW result: a peer asked for the target CID.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WanterObservation {
    /// The requesting peer.
    pub peer: PeerId,
    /// When the request was observed.
    pub at: SimTime,
}

/// Runs the IDW attack: all peers observed requesting `cid`, with their
/// request times (primary requests only — repeats don't add information).
pub fn identify_data_wanters(trace: &UnifiedTrace, cid: &Cid) -> Vec<WanterObservation> {
    let mut observations: Vec<WanterObservation> = trace
        .primary_requests()
        .filter(|e| e.cid == *cid)
        .map(|e| WanterObservation {
            peer: e.peer,
            at: e.timestamp,
        })
        .collect();
    observations.sort_by_key(|o| (o.at, o.peer));
    observations
}

// ---------------------------------------------------------------------------
// TNW
// ---------------------------------------------------------------------------

/// The request profile of one tracked node.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeWantProfile {
    /// CIDs the node requested, with all observed request times.
    pub wants: BTreeMap<Cid, Vec<SimTime>>,
}

impl NodeWantProfile {
    /// Number of distinct CIDs the node was observed requesting.
    pub fn distinct_cids(&self) -> usize {
        self.wants.len()
    }

    /// Total number of observed (primary) requests.
    pub fn total_requests(&self) -> usize {
        self.wants.values().map(Vec::len).sum()
    }
}

/// Runs the TNW attack: everything the target peer was observed requesting.
pub fn track_node_wants(trace: &UnifiedTrace, target: &PeerId) -> NodeWantProfile {
    let mut profile = NodeWantProfile::default();
    for entry in trace.primary_requests().filter(|e| e.peer == *target) {
        profile
            .wants
            .entry(entry.cid.clone())
            .or_default()
            .push(entry.timestamp);
    }
    profile
}

// ---------------------------------------------------------------------------
// TPI
// ---------------------------------------------------------------------------

/// Outcome of a TPI probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TpiOutcome {
    /// The target answered the probe: the data is in its cache, so it was
    /// requested (or published) via that node in the recent past.
    CachedRecently,
    /// The target did not have the block.
    NotCached,
}

/// Runs the TPI attack against a node of the simulated network: send a probe
/// request for `cid` to the target and observe whether it can serve the
/// block. In the simulation this inspects the target's block store — exactly
/// the signal a real probe request would extract, since nodes serve cached
/// blocks to anyone who asks.
pub fn test_past_interest(network: &Network, target_node: usize, cid: &Cid) -> TpiOutcome {
    if network.node_has_block(target_node, cid) {
        TpiOutcome::CachedRecently
    } else {
        TpiOutcome::NotCached
    }
}

// ---------------------------------------------------------------------------
// Gateway probing
// ---------------------------------------------------------------------------

/// One prepared gateway probe (Sec. VI-B1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatewayProbe {
    /// Name of the probed gateway operator.
    pub operator_name: String,
    /// Index of the probed operator in the scenario.
    pub operator: usize,
    /// The unique random-content CID used for this probe.
    pub cid: Cid,
    /// When the HTTP request was issued.
    pub issued_at: SimTime,
}

/// Result of evaluating a probe against the collected trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatewayProbeResult {
    /// The probe this result belongs to.
    pub probe: GatewayProbe,
    /// Node IDs that requested the probe CID — the IPFS side of the gateway.
    pub discovered_peers: Vec<PeerId>,
}

/// Orchestrates gateway probing against a [`Network`] before it runs.
#[derive(Debug, Default)]
pub struct GatewayProber {
    probes: Vec<GatewayProbe>,
}

impl GatewayProber {
    /// Creates an empty prober.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares one probe: generates a unique block of random data, registers
    /// monitor `monitor` as its only DHT provider, and schedules an HTTP
    /// request for it through operator `operator` at time `at`.
    pub fn prepare_probe(
        &mut self,
        network: &mut Network,
        monitor: usize,
        operator: usize,
        at: SimTime,
        rng: &mut SimRng,
    ) -> GatewayProbe {
        // A unique random block → a CID nobody else will ever request.
        let mut payload = vec![0u8; 64];
        rng.fill_bytes(&mut payload);
        let block = Block::new(Multicodec::Raw, payload);
        let cid = block.cid().clone();
        let dag = BuiltDag {
            root: cid.clone(),
            total_size: block.logical_size(),
            blocks: vec![block],
        };
        let content = network.add_content(ContentSpec {
            dag,
            initial_providers: Vec::new(),
        });
        network.register_monitor_provider(monitor, content);
        network.schedule_gateway_request(GatewayRequestEvent {
            at,
            operator,
            content,
        });
        let probe = GatewayProbe {
            operator_name: network.scenario().operators[operator].name.clone(),
            operator,
            cid,
            issued_at: at,
        };
        self.probes.push(probe.clone());
        probe
    }

    /// Prepares one probe per operator of the scenario, spaced `spacing_secs`
    /// apart starting at `start`.
    pub fn probe_all_operators(
        &mut self,
        network: &mut Network,
        monitor: usize,
        start: SimTime,
        spacing_secs: u64,
        rng: &mut SimRng,
    ) -> usize {
        let operators = network.scenario().operators.len();
        for op in 0..operators {
            let at = SimTime::from_millis(start.as_millis() + op as u64 * spacing_secs * 1000);
            self.prepare_probe(network, monitor, op, at, rng);
        }
        operators
    }

    /// The prepared probes.
    pub fn probes(&self) -> &[GatewayProbe] {
        &self.probes
    }

    /// After the simulation ran, evaluates every probe against the unified
    /// trace: any peer that requested the probe CID is (part of) the gateway's
    /// IPFS side.
    pub fn evaluate(&self, trace: &UnifiedTrace) -> Vec<GatewayProbeResult> {
        self.probes
            .iter()
            .map(|probe| {
                let peers: HashSet<PeerId> = trace
                    .entries
                    .iter()
                    .filter(|e| e.is_request() && e.cid == probe.cid)
                    .map(|e| e.peer)
                    .collect();
                let mut discovered: Vec<PeerId> = peers.into_iter().collect();
                discovered.sort();
                GatewayProbeResult {
                    probe: probe.clone(),
                    discovered_peers: discovered,
                }
            })
            .collect()
    }
}

/// Cross-references probe results with the monitors' peer lists to find
/// operators running multiple nodes (the paper discovered 93 gateway node IDs
/// this way, 13 behind a single operator).
pub fn gateway_nodes_by_operator(
    results: &[GatewayProbeResult],
) -> BTreeMap<String, HashSet<PeerId>> {
    let mut map: BTreeMap<String, HashSet<PeerId>> = BTreeMap::new();
    for result in results {
        map.entry(result.probe.operator_name.clone())
            .or_default()
            .extend(result.discovered_peers.iter().copied());
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EntryFlags, TraceEntry};
    use ipfs_mon_bitswap::RequestType;
    use ipfs_mon_types::{Country, Multiaddr, Transport};

    fn entry(secs: u64, peer: u64, cid: u8, rtype: RequestType) -> TraceEntry {
        TraceEntry {
            timestamp: SimTime::from_secs(secs),
            peer: PeerId::derived(11, peer),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::Us),
            request_type: rtype,
            cid: Cid::new_v1(Multicodec::Raw, &[cid]),
            monitor: 0,
            flags: EntryFlags::default(),
        }
    }

    #[test]
    fn idw_lists_wanters_of_a_cid() {
        let trace = UnifiedTrace {
            entries: vec![
                entry(10, 1, 7, RequestType::WantHave),
                entry(20, 2, 7, RequestType::WantBlock),
                entry(30, 3, 8, RequestType::WantHave),
                entry(40, 1, 7, RequestType::Cancel),
            ],
        };
        let target = Cid::new_v1(Multicodec::Raw, &[7]);
        let wanters = identify_data_wanters(&trace, &target);
        assert_eq!(wanters.len(), 2);
        assert_eq!(wanters[0].peer, PeerId::derived(11, 1));
        assert_eq!(wanters[1].peer, PeerId::derived(11, 2));
    }

    #[test]
    fn tnw_profiles_a_target_node() {
        let trace = UnifiedTrace {
            entries: vec![
                entry(10, 1, 1, RequestType::WantHave),
                entry(20, 1, 2, RequestType::WantHave),
                entry(25, 1, 2, RequestType::WantHave),
                entry(30, 2, 3, RequestType::WantHave),
            ],
        };
        let profile = track_node_wants(&trace, &PeerId::derived(11, 1));
        assert_eq!(profile.distinct_cids(), 2);
        assert_eq!(profile.total_requests(), 3);
        assert!(profile
            .wants
            .contains_key(&Cid::new_v1(Multicodec::Raw, &[2])));
        // The other node's requests are not attributed to the target.
        assert!(!profile
            .wants
            .contains_key(&Cid::new_v1(Multicodec::Raw, &[3])));
    }

    #[test]
    fn flagged_repeats_do_not_inflate_profiles() {
        let mut repeat = entry(40, 1, 1, RequestType::WantHave);
        repeat.flags.rebroadcast = true;
        let trace = UnifiedTrace {
            entries: vec![entry(10, 1, 1, RequestType::WantHave), repeat],
        };
        let profile = track_node_wants(&trace, &PeerId::derived(11, 1));
        assert_eq!(profile.total_requests(), 1);
        let wanters = identify_data_wanters(&trace, &Cid::new_v1(Multicodec::Raw, &[1]));
        assert_eq!(wanters.len(), 1);
    }

    #[test]
    fn gateway_nodes_by_operator_merges_probe_results() {
        let probe = |name: &str, cid: u8| GatewayProbe {
            operator_name: name.into(),
            operator: 0,
            cid: Cid::new_v1(Multicodec::Raw, &[cid]),
            issued_at: SimTime::ZERO,
        };
        let results = vec![
            GatewayProbeResult {
                probe: probe("gw-a", 1),
                discovered_peers: vec![PeerId::derived(11, 1), PeerId::derived(11, 2)],
            },
            GatewayProbeResult {
                probe: probe("gw-a", 2),
                discovered_peers: vec![PeerId::derived(11, 2), PeerId::derived(11, 3)],
            },
            GatewayProbeResult {
                probe: probe("gw-b", 3),
                discovered_peers: vec![],
            },
        ];
        let map = gateway_nodes_by_operator(&results);
        assert_eq!(map["gw-a"].len(), 3);
        assert!(map["gw-b"].is_empty());
    }
}
