//! Trace data model (re-exported from `ipfs-mon-tracestore`).
//!
//! The record types originally lived here; they moved to the storage
//! subsystem so that the columnar segment format, the sharded writer, and the
//! streaming reader can work with them without a circular dependency. This
//! module re-exports everything under its historical path, so
//! `ipfs_mon_core::trace::TraceEntry` (and the crate-root re-exports) keep
//! working unchanged.

pub use ipfs_mon_tracestore::record::{
    ConnectionRecord, EntryFlags, MonitoringDataset, TraceEntry, UnifiedTrace,
};
// The streaming abstraction over every trace representation lives with the
// record types it yields; re-exported here so methodology code and its
// consumers name one module for "a readable trace".
pub use ipfs_mon_tracestore::source::{SourceConnections, SourceEntries, TraceSource};
