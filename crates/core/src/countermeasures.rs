//! Privacy countermeasures (Sec. VI-C).
//!
//! The paper closes with a design-space discussion of countermeasures against
//! the IDW/TNW/TPI attacks. This module makes that discussion executable: each
//! [`Countermeasure`] is modelled as a transformation of what the adversary's
//! monitors would have observed, and [`evaluate`] quantifies how much each
//! attack degrades (and at what overhead) — the trade-offs the paper describes
//! qualitatively.
//!
//! Modelled countermeasures:
//!
//! * **Node-ID rotation** — nodes cycle their peer ID every `interval`; TNW
//!   profiles fragment across the rotated identities, at the cost of
//!   connection churn (each rotation tears down all connections).
//! * **Cover traffic** — nodes issue fake requests for existing CIDs; IDW
//!   loses precision because fake wanters are indistinguishable from real
//!   ones, at the cost of additional request traffic.
//! * **Salted CID hashing** — requests carry salted hashes instead of
//!   plaintext CIDs; an adversary can only link requests to CIDs it already
//!   knows (modelled by an adversary-knowledge fraction).
//! * **Gateway usage** — a fraction of users sends requests via public
//!   gateways instead of their own node; their requests disappear from the
//!   adversary's per-user view entirely (but centralize trust in gateways).

use crate::trace::{TraceEntry, UnifiedTrace};
use ipfs_mon_simnet::rng::SimRng;
use ipfs_mon_simnet::time::SimDuration;
use ipfs_mon_types::{Cid, Multicodec, PeerId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A privacy countermeasure from the Sec. VI-C design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Countermeasure {
    /// Nodes rotate their peer ID every `interval`.
    NodeIdRotation {
        /// Time between identity changes.
        interval: SimDuration,
    },
    /// Nodes send `fake_per_real` fake requests (for plausible existing CIDs)
    /// per genuine request.
    CoverTraffic {
        /// Fake requests added per real request.
        fake_per_real: f64,
    },
    /// Requests carry salted hashes of CIDs; the adversary can only interpret
    /// requests for CIDs it already knows.
    SaltedCidHashing {
        /// Fraction of requested CIDs the adversary knows in plaintext (e.g.
        /// from public `ipfs://` links).
        adversary_knowledge: f64,
    },
    /// A fraction of users routes requests through public gateways instead of
    /// running their own node.
    GatewayUsage {
        /// Fraction of (non-gateway) users moving behind gateways.
        adoption: f64,
    },
}

/// The adversary-visible trace after applying a countermeasure, plus overhead
/// accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MitigatedTrace {
    /// What the monitors observe once the countermeasure is deployed.
    pub trace: UnifiedTrace,
    /// Extra requests induced by the countermeasure (cover traffic), as a
    /// fraction of the original request volume.
    pub traffic_overhead: f64,
    /// Number of connection teardowns forced by identity rotation.
    pub forced_reconnections: u64,
}

/// Effectiveness metrics of a countermeasure against the three attacks.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CountermeasureEvaluation {
    /// Mean fraction of a node's requests still linkable to a single observed
    /// identity (TNW strength; 1.0 = fully trackable).
    pub tnw_linkability: f64,
    /// Precision of IDW: fraction of identified wanters of a CID that really
    /// wanted it (1.0 = no plausible deniability).
    pub idw_precision: f64,
    /// Fraction of requests whose CID the adversary can still interpret.
    pub cid_visibility: f64,
    /// Traffic overhead introduced by the countermeasure.
    pub traffic_overhead: f64,
}

/// Applies a countermeasure to the adversary's view of a trace.
///
/// The input should be the unified trace of a run *without* countermeasures;
/// the output is what the same monitors would have recorded had the
/// countermeasure been deployed by all (affected) users.
pub fn apply(
    trace: &UnifiedTrace,
    countermeasure: Countermeasure,
    rng: &mut SimRng,
) -> MitigatedTrace {
    match countermeasure {
        Countermeasure::NodeIdRotation { interval } => apply_rotation(trace, interval),
        Countermeasure::CoverTraffic { fake_per_real } => {
            apply_cover_traffic(trace, fake_per_real, rng)
        }
        Countermeasure::SaltedCidHashing {
            adversary_knowledge,
        } => apply_salted_hashing(trace, adversary_knowledge, rng),
        Countermeasure::GatewayUsage { adoption } => apply_gateway_usage(trace, adoption, rng),
    }
}

fn apply_rotation(trace: &UnifiedTrace, interval: SimDuration) -> MitigatedTrace {
    assert!(
        interval.as_millis() > 0,
        "rotation interval must be positive"
    );
    let mut entries = trace.entries.clone();
    let mut reconnections: HashSet<(PeerId, u64)> = HashSet::new();
    for entry in entries.iter_mut() {
        let epoch = entry.timestamp.as_millis() / interval.as_millis();
        // The rotated identity is a deterministic function of (true identity,
        // epoch): within an epoch the node is linkable, across epochs it is
        // not (the adversary cannot invert the hash).
        let mut seed_bytes = [0u8; 8];
        seed_bytes.copy_from_slice(&entry.peer.as_bytes()[..8]);
        let seed = u64::from_be_bytes(seed_bytes);
        if epoch > 0 {
            reconnections.insert((entry.peer, epoch));
        }
        entry.peer = PeerId::derived(seed ^ 0xA5A5_5A5A, epoch);
    }
    MitigatedTrace {
        trace: UnifiedTrace { entries },
        traffic_overhead: 0.0,
        forced_reconnections: reconnections.len() as u64,
    }
}

fn apply_cover_traffic(
    trace: &UnifiedTrace,
    fake_per_real: f64,
    rng: &mut SimRng,
) -> MitigatedTrace {
    assert!(
        fake_per_real >= 0.0,
        "cover traffic rate must be non-negative"
    );
    // Sort after dedup: HashSet iteration order is randomized per process,
    // and the fake-CID draws below must be deterministic for a fixed RNG
    // seed (identical runs, non-flaky seeded tests).
    let mut cids: Vec<Cid> = trace
        .primary_requests()
        .map(|e| e.cid.clone())
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    cids.sort();
    let peers: Vec<&TraceEntry> = trace.primary_requests().collect();
    let mut entries = trace.entries.clone();
    let mut added = 0u64;
    if !cids.is_empty() {
        for entry in &peers {
            let mut budget = fake_per_real;
            while budget > 0.0 {
                let emit = if budget >= 1.0 {
                    true
                } else {
                    rng.gen_bool(budget)
                };
                if emit {
                    let mut fake = (*entry).clone();
                    fake.cid = cids[rng.gen_range(0..cids.len())].clone();
                    entries.push(fake);
                    added += 1;
                }
                budget -= 1.0;
            }
        }
    }
    entries.sort_by_key(|e| (e.timestamp, e.monitor));
    let real = peers.len().max(1) as f64;
    MitigatedTrace {
        trace: UnifiedTrace { entries },
        traffic_overhead: added as f64 / real,
        forced_reconnections: 0,
    }
}

fn apply_salted_hashing(
    trace: &UnifiedTrace,
    adversary_knowledge: f64,
    rng: &mut SimRng,
) -> MitigatedTrace {
    let knowledge = adversary_knowledge.clamp(0.0, 1.0);
    // Decide per CID whether the adversary knows it (public links keep being
    // trackable even under hashing — the paper's caveat).
    let mut known: HashMap<Cid, bool> = HashMap::new();
    let mut entries = trace.entries.clone();
    for entry in entries.iter_mut() {
        let is_known = *known
            .entry(entry.cid.clone())
            .or_insert_with(|| rng.gen_bool(knowledge));
        if !is_known {
            // The adversary only sees an opaque salted hash: model it as a
            // fresh unlinkable CID per entry.
            let mut salt = [0u8; 16];
            rng.fill(&mut salt);
            entry.cid = Cid::new_v1(Multicodec::Raw, &salt);
        }
    }
    MitigatedTrace {
        trace: UnifiedTrace { entries },
        traffic_overhead: 0.0,
        forced_reconnections: 0,
    }
}

fn apply_gateway_usage(trace: &UnifiedTrace, adoption: f64, rng: &mut SimRng) -> MitigatedTrace {
    let adoption = adoption.clamp(0.0, 1.0);
    // Users adopting gateway access stop emitting Bitswap requests from their
    // own node: drop their entries (the gateway side would show up instead,
    // already aggregated and therefore not attributable to the user).
    let peers: HashSet<PeerId> = trace.entries.iter().map(|e| e.peer).collect();
    let adopting: HashSet<PeerId> = peers
        .into_iter()
        .filter(|_| rng.gen_bool(adoption))
        .collect();
    let entries: Vec<TraceEntry> = trace
        .entries
        .iter()
        .filter(|e| !adopting.contains(&e.peer))
        .cloned()
        .collect();
    MitigatedTrace {
        trace: UnifiedTrace { entries },
        traffic_overhead: 0.0,
        forced_reconnections: 0,
    }
}

/// Evaluates how well the attacks still work on a mitigated trace, relative
/// to the ground truth contained in the *original* trace.
pub fn evaluate(original: &UnifiedTrace, mitigated: &MitigatedTrace) -> CountermeasureEvaluation {
    // TNW linkability: for each original peer, the largest fraction of its
    // requests that remains attributable to one observed identity.
    // With rotation the observed identity changes over time; without any
    // countermeasure it stays 1.0. We approximate attribution by comparing
    // per-(timestamp, cid) matches — the adversary sees the mitigated
    // entries, and the question is how concentrated each user's activity
    // remains under observed identities.
    let mut per_original_peer: HashMap<PeerId, HashMap<PeerId, u64>> = HashMap::new();
    // Align original and mitigated entries by (timestamp, CID): the
    // transformations preserve that pair for entries that stay observable,
    // which is exactly the attribution question the adversary faces.
    let mitigated_index: HashMap<(u64, Cid), Vec<&TraceEntry>> = {
        let mut map: HashMap<(u64, Cid), Vec<&TraceEntry>> = HashMap::new();
        for e in mitigated.trace.primary_requests() {
            map.entry((e.timestamp.as_millis(), e.cid.clone()))
                .or_default()
                .push(e);
        }
        map
    };
    let mut total_original_requests = 0u64;
    let mut visible_cids = 0u64;
    for entry in original.primary_requests() {
        total_original_requests += 1;
        if let Some(matches) =
            mitigated_index.get(&(entry.timestamp.as_millis(), entry.cid.clone()))
        {
            if let Some(observed) = matches.first() {
                *per_original_peer
                    .entry(entry.peer)
                    .or_default()
                    .entry(observed.peer)
                    .or_insert(0) += 1;
                visible_cids += 1;
            }
        }
    }
    let tnw_linkability = if per_original_peer.is_empty() {
        0.0
    } else {
        per_original_peer
            .values()
            .map(|observed| {
                let total: u64 = observed.values().sum();
                let max = observed.values().copied().max().unwrap_or(0);
                if total == 0 {
                    0.0
                } else {
                    max as f64 / total as f64
                }
            })
            .sum::<f64>()
            / per_original_peer.len() as f64
    };

    // IDW precision: for the most-requested original CID, which fraction of
    // the wanters identified on the mitigated trace really requested it.
    let mut truth: HashMap<&Cid, HashSet<PeerId>> = HashMap::new();
    for entry in original.primary_requests() {
        truth.entry(&entry.cid).or_default().insert(entry.peer);
    }
    // Tie-break by CID: `truth` is a HashMap, and with equally-requested
    // CIDs `max_by_key` alone would pick a process-random winner, making
    // the reported precision nondeterministic across identical runs.
    let idw_precision = truth
        .iter()
        .max_by_key(|(cid, peers)| (peers.len(), *cid))
        .map(|(cid, peers)| {
            let identified: HashSet<PeerId> = mitigated
                .trace
                .primary_requests()
                .filter(|e| e.cid == **cid)
                .map(|e| e.peer)
                .collect();
            if identified.is_empty() {
                0.0
            } else {
                identified.intersection(peers).count() as f64 / identified.len() as f64
            }
        })
        .unwrap_or(0.0);

    // CID visibility: fraction of original requests that still appear with
    // their interpretable (original) CID at the original time in the
    // mitigated trace.
    let cid_visibility = if total_original_requests == 0 {
        0.0
    } else {
        (visible_cids as f64 / total_original_requests as f64).min(1.0)
    };

    CountermeasureEvaluation {
        tnw_linkability,
        idw_precision,
        cid_visibility,
        traffic_overhead: mitigated.traffic_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EntryFlags;
    use ipfs_mon_bitswap::RequestType;
    use ipfs_mon_simnet::time::SimTime;
    use ipfs_mon_types::{Country, Multiaddr, Transport};

    fn entry(secs: u64, peer: u64, cid: u8) -> TraceEntry {
        TraceEntry {
            timestamp: SimTime::from_secs(secs),
            peer: PeerId::derived(77, peer),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::De),
            request_type: RequestType::WantHave,
            cid: Cid::new_v1(Multicodec::Raw, &[cid]),
            monitor: 0,
            flags: EntryFlags::default(),
        }
    }

    /// One node requesting 20 CIDs over 10 hours, another requesting 5.
    fn base_trace() -> UnifiedTrace {
        let mut entries = Vec::new();
        for i in 0..20u64 {
            entries.push(entry(i * 1800, 1, i as u8));
        }
        for i in 0..5u64 {
            entries.push(entry(i * 3600, 2, 100 + i as u8));
        }
        UnifiedTrace { entries }
    }

    #[test]
    fn baseline_without_countermeasure_is_fully_trackable() {
        let trace = base_trace();
        let mitigated = MitigatedTrace {
            trace: trace.clone(),
            traffic_overhead: 0.0,
            forced_reconnections: 0,
        };
        let eval = evaluate(&trace, &mitigated);
        assert!((eval.tnw_linkability - 1.0).abs() < 1e-9);
        assert!((eval.idw_precision - 1.0).abs() < 1e-9);
        assert!((eval.cid_visibility - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_fragments_tnw_profiles() {
        let trace = base_trace();
        let mut rng = SimRng::new(1);
        let mitigated = apply(
            &trace,
            Countermeasure::NodeIdRotation {
                interval: SimDuration::from_hours(2),
            },
            &mut rng,
        );
        let eval = evaluate(&trace, &mitigated);
        assert!(
            eval.tnw_linkability < 0.5,
            "rotation should fragment profiles: {}",
            eval.tnw_linkability
        );
        // CIDs remain visible in plaintext.
        assert!((eval.cid_visibility - 1.0).abs() < 1e-9);
        assert!(mitigated.forced_reconnections > 0);
        // Distinct observed identities exceed the two real nodes.
        let observed: HashSet<PeerId> = mitigated.trace.entries.iter().map(|e| e.peer).collect();
        assert!(observed.len() > 2);
    }

    #[test]
    fn rotation_keeps_identity_within_an_epoch() {
        let trace = UnifiedTrace {
            entries: vec![entry(10, 1, 1), entry(20, 1, 2)],
        };
        let mut rng = SimRng::new(2);
        let mitigated = apply(
            &trace,
            Countermeasure::NodeIdRotation {
                interval: SimDuration::from_hours(1),
            },
            &mut rng,
        );
        assert_eq!(
            mitigated.trace.entries[0].peer,
            mitigated.trace.entries[1].peer
        );
    }

    #[test]
    fn cover_traffic_reduces_idw_precision_and_adds_overhead() {
        // A richer population: ten users with five distinct CIDs each, so
        // fake requests for any given CID almost surely come from peers that
        // never really wanted it.
        let mut entries = Vec::new();
        for peer in 0..10u64 {
            for i in 0..5u64 {
                entries.push(entry(peer * 100 + i * 10, peer, (peer * 5 + i) as u8));
            }
        }
        let trace = UnifiedTrace { entries };
        let mut rng = SimRng::new(3);
        let mitigated = apply(
            &trace,
            Countermeasure::CoverTraffic { fake_per_real: 3.0 },
            &mut rng,
        );
        let eval = evaluate(&trace, &mitigated);
        assert!(
            eval.idw_precision < 1.0,
            "fakes should dilute IDW: {}",
            eval.idw_precision
        );
        assert!(
            eval.traffic_overhead > 2.0,
            "overhead {}",
            eval.traffic_overhead
        );
        assert!(mitigated.trace.len() > trace.len());
    }

    #[test]
    fn salted_hashing_hides_unknown_cids_only() {
        let trace = base_trace();
        let mut rng = SimRng::new(4);
        let hidden = apply(
            &trace,
            Countermeasure::SaltedCidHashing {
                adversary_knowledge: 0.0,
            },
            &mut rng,
        );
        let eval_hidden = evaluate(&trace, &hidden);
        assert!(
            eval_hidden.cid_visibility < 0.05,
            "{}",
            eval_hidden.cid_visibility
        );

        let mut rng = SimRng::new(5);
        let known = apply(
            &trace,
            Countermeasure::SaltedCidHashing {
                adversary_knowledge: 1.0,
            },
            &mut rng,
        );
        let eval_known = evaluate(&trace, &known);
        assert!((eval_known.cid_visibility - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gateway_adoption_removes_users_from_the_trace() {
        let trace = base_trace();
        let mut rng = SimRng::new(6);
        let mitigated = apply(
            &trace,
            Countermeasure::GatewayUsage { adoption: 1.0 },
            &mut rng,
        );
        assert!(mitigated.trace.is_empty());
        let eval = evaluate(&trace, &mitigated);
        assert_eq!(eval.idw_precision, 0.0);
        assert_eq!(eval.tnw_linkability, 0.0);
    }

    #[test]
    fn zero_strength_countermeasures_change_nothing() {
        let trace = base_trace();
        let mut rng = SimRng::new(7);
        let cover = apply(
            &trace,
            Countermeasure::CoverTraffic { fake_per_real: 0.0 },
            &mut rng,
        );
        assert_eq!(cover.trace.len(), trace.len());
        let gateway = apply(
            &trace,
            Countermeasure::GatewayUsage { adoption: 0.0 },
            &mut rng,
        );
        assert_eq!(gateway.trace.len(), trace.len());
    }
}
