//! Passive Bitswap-request monitoring for decentralized data storage systems —
//! the core library of this workspace, implementing the methodology of
//! *"Monitoring Data Requests in Decentralized Data Storage Systems: A Case
//! Study of IPFS"* (ICDCS 2022).
//!
//! The pipeline mirrors the paper:
//!
//! 1. **Collection** ([`monitor`], [`trace`]) — passive monitoring nodes
//!    accept every connection and log each received Bitswap wantlist entry as
//!    a `(timestamp, node ID, address, request type, CID)` tuple, together
//!    with connection events.
//! 2. **Preprocessing** ([`preprocess`]) — traces from multiple monitors are
//!    unified; inter-monitor duplicates (5 s window) and periodic 30 s
//!    re-broadcasts (31 s window) are flagged.
//! 3. **Analysis** ([`netsize`], [`popularity`], [`activity`]) — network-size
//!    estimation and monitoring coverage (Sec. V-C), content-popularity
//!    distributions with the power-law test (Sec. V-E), request-type /
//!    multicodec / geography breakdowns (Fig. 4, Tables I and II), and
//!    origin-group rate series (Fig. 6). The merge-order-independent
//!    analyses are additionally ported to the parallel analysis engine as
//!    [`sinks`] (one worker per monitor chain, no k-way merge; see
//!    [`AnalysisSink`]), with the single-stream entry points kept as thin
//!    wrappers over the same accumulators.
//! 4. **Privacy attacks** ([`attacks`]) — IDW, TNW, TPI and the gateway
//!    probing methodology of Sec. VI.
//! 5. **Continuous monitoring** ([`windowed`], [`service`]) — the same
//!    analyses over event-time windows ([`windowed`] adapts the
//!    accumulators to `WindowedSink`), and [`service::MonitorService`],
//!    the long-running loop tying crash recovery, resumed collection,
//!    incremental tailing, and windowed analysis into one restart-proof
//!    process with exactly-once window output.
//!
//! Data is fed in either from the bundled network simulator
//! (`ipfs-mon-node`, via [`monitor::MonitorCollector`]) or from persisted JSON
//! traces.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]

pub mod activity;
pub mod attacks;
pub mod countermeasures;
pub mod monitor;
pub mod netsize;
pub mod popularity;
pub mod preprocess;
pub mod service;
pub mod sinks;
pub mod trace;
pub mod windowed;

pub use activity::{
    country_shares, multicodec_shares, origin_group_rates, per_peer_request_counts,
    per_peer_request_counts_stream, request_type_series, request_type_series_stream,
    OriginGroupRates, RequestTypeSeries,
};
pub use attacks::{
    gateway_nodes_by_operator, identify_data_wanters, identify_data_wanters_stream,
    run_attacks_source, test_past_interest, track_node_wants, track_node_wants_stream, AttackScan,
    AttackSuiteReport, AttackTargets, GatewayProbe, GatewayProbeResult, GatewayProber,
    NodeWantProfile, TpiOutcome, WanterObservation,
};
pub use countermeasures::{
    apply as apply_countermeasure, evaluate as evaluate_countermeasure, Countermeasure,
    CountermeasureEvaluation, MitigatedTrace,
};
pub use monitor::{ManifestCollector, MonitorCollector, SpillingCollector};
pub use netsize::{
    coverage, estimate_network_size, estimate_network_size_source, peer_id_positions,
    CoverageReport, NetworkSizeReport, PeerSetSnapshot, SnapshotBuilder,
};
pub use popularity::{
    popularity_report, popularity_scores, popularity_scores_stream, PopularityReport,
    PopularityScores,
};
pub use preprocess::{
    flag_segment, flag_source, unify_and_flag, unify_and_flag_segment, unify_and_flag_source,
    unify_and_flag_stream, FlaggedStream, PreprocessConfig, PreprocessStats, StreamingPreprocessor,
};
pub use service::{
    format_window_line, window_file_name, MonitorService, ServiceConfig, ServiceReport,
    ServiceWindowAccum, WindowSummary, WINDOW_DIR_NAME,
};
pub use sinks::{
    activity_counts_source, entry_stats_source, popularity_scores_source,
    request_type_series_source, ActivityCounts, ActivityCountsSink, EntryStatsSink,
    MonitorEntryStats, PopularitySink, RequestTypeSink,
};
pub use trace::{
    ConnectionRecord, EntryFlags, MonitoringDataset, TraceEntry, TraceSource, UnifiedTrace,
};
pub use windowed::{
    netsize_window_factory, popularity_window_factory, request_type_window_factory,
    windowed_netsize, windowed_popularity, windowed_request_types, NetsizeWindowSink,
};
// The parallel-analysis engine primitives live in `ipfs-mon-tracestore`
// (below this crate in the dependency order, so that
// `ManifestReader::run_parallel` can name the trait); this crate re-exports
// them as the methodology-layer API next to the sinks implementing them.
pub use ipfs_mon_tracestore::{run_sink, AnalysisSink};
