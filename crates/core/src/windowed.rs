//! Windowed adapters over the paper's analyses: factories that plug the
//! existing accumulators into
//! [`WindowedSink`](ipfs_mon_tracestore::WindowedSink), producing
//! per-window request-type series, rolling popularity, and daily (or any
//! interval) network-size reports from a live stream.
//!
//! Each factory builds a fresh per-window [`AnalysisSink`]; the windowing
//! machinery (watermarks, late-entry policy, sealing, callback/deferred
//! emission) lives in [`ipfs_mon_tracestore::window`]. The convenience
//! constructors here return *deferred* sinks (sealed windows collected
//! into [`WindowedOutput`](ipfs_mon_tracestore::WindowedOutput), ready for
//! `run_sink`/`run_parallel`); the continuous service builds
//! callback-mode sinks from the same factories.

use crate::netsize::{NetworkSizeReport, SnapshotBuilder};
use crate::sinks::{PopularitySink, RequestTypeSink};
use crate::trace::{ConnectionRecord, TraceEntry};
use ipfs_mon_simnet::time::{SimDuration, SimTime};
use ipfs_mon_tracestore::{AnalysisSink, LatePolicy, WindowBounds, WindowSpec, WindowedSink};
use std::sync::Arc;

/// Per-window network-size estimation: a [`SnapshotBuilder`] over the
/// window's sub-grid, pre-fed with the connection records overlapping the
/// window, absorbing the window's entries as Bitswap-activity evidence.
#[derive(Debug, Clone)]
pub struct NetsizeWindowSink {
    builder: SnapshotBuilder,
}

impl NetsizeWindowSink {
    /// Creates the sink for one window: snapshots every `interval` at
    /// `start, start + interval, …` strictly inside `[start, end)`, seeded
    /// with every connection record overlapping the window.
    pub fn for_window(
        monitors: usize,
        bounds: &WindowBounds,
        interval: SimDuration,
        connections: &[ConnectionRecord],
    ) -> Self {
        // The builder sweeps an inclusive `[start, end]` grid; stop one
        // millisecond short so the snapshot at the next window's start is
        // not double-reported.
        let sweep_end = SimTime::from_millis(bounds.end.as_millis() - 1);
        let mut builder = SnapshotBuilder::new(monitors, bounds.start, sweep_end, interval);
        for record in connections {
            let overlaps = record.connected_at < bounds.end
                && record.disconnected_at.is_none_or(|d| d > bounds.start);
            if overlaps {
                builder.observe_connection(record);
            }
        }
        Self { builder }
    }
}

impl AnalysisSink for NetsizeWindowSink {
    type Output = NetworkSizeReport;

    fn consume(&mut self, entry: TraceEntry) {
        self.builder.observe_entry(&entry);
    }

    fn combine(&mut self, other: Self) {
        self.builder.merge(other.builder);
    }

    fn finish(self) -> NetworkSizeReport {
        self.builder.finish()
    }
}

/// Factory for per-window request-type series accumulators (Fig. 4 per
/// window): one [`RequestTypeSink`] with the given bucket width per
/// window.
pub fn request_type_window_factory(
    bucket: SimDuration,
) -> impl Fn(&WindowBounds) -> RequestTypeSink + Clone + Send + Sync {
    move |_| RequestTypeSink::new(bucket)
}

/// Factory for rolling-popularity accumulators: a fresh
/// [`PopularitySink`] (RRP + URP over primary requests) per window.
pub fn popularity_window_factory() -> impl Fn(&WindowBounds) -> PopularitySink + Clone + Send + Sync
{
    |_| PopularitySink::new()
}

/// Factory for per-window network-size estimation: a
/// [`NetsizeWindowSink`] snapshotting every `interval`, seeded from the
/// shared connection log.
pub fn netsize_window_factory(
    monitors: usize,
    interval: SimDuration,
    connections: Arc<Vec<ConnectionRecord>>,
) -> impl Fn(&WindowBounds) -> NetsizeWindowSink + Clone + Send + Sync {
    move |bounds| NetsizeWindowSink::for_window(monitors, bounds, interval, &connections)
}

/// Deferred windowed request-type series: seals one `Vec<RequestTypeSeries>`
/// (indexed by monitor) per window.
pub fn windowed_request_types(
    monitors: usize,
    spec: WindowSpec,
    lateness: SimDuration,
    policy: LatePolicy,
    bucket: SimDuration,
) -> WindowedSink<RequestTypeSink, impl Fn(&WindowBounds) -> RequestTypeSink + Clone + Send + Sync>
{
    WindowedSink::deferred(
        monitors,
        spec,
        lateness,
        policy,
        request_type_window_factory(bucket),
    )
}

/// Deferred rolling popularity: seals one
/// [`PopularityScores`](crate::popularity::PopularityScores) per window.
pub fn windowed_popularity(
    monitors: usize,
    spec: WindowSpec,
    lateness: SimDuration,
    policy: LatePolicy,
) -> WindowedSink<PopularitySink, impl Fn(&WindowBounds) -> PopularitySink + Clone + Send + Sync> {
    WindowedSink::deferred(
        monitors,
        spec,
        lateness,
        policy,
        popularity_window_factory(),
    )
}

/// Deferred windowed network-size estimation (daily netsize when `spec`
/// tumbles by days): seals one [`NetworkSizeReport`] per window.
pub fn windowed_netsize(
    monitors: usize,
    spec: WindowSpec,
    lateness: SimDuration,
    policy: LatePolicy,
    interval: SimDuration,
    connections: Arc<Vec<ConnectionRecord>>,
) -> WindowedSink<
    NetsizeWindowSink,
    impl Fn(&WindowBounds) -> NetsizeWindowSink + Clone + Send + Sync,
> {
    WindowedSink::deferred(
        monitors,
        spec,
        lateness,
        policy,
        netsize_window_factory(monitors, interval, connections),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EntryFlags;
    use ipfs_mon_bitswap::RequestType;
    use ipfs_mon_types::{Cid, Country, Multiaddr, Multicodec, PeerId, Transport};

    fn entry(ms: u64, monitor: usize, rtype: RequestType) -> TraceEntry {
        TraceEntry {
            timestamp: SimTime::from_millis(ms),
            peer: PeerId::derived(7, ms % 5),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::Us),
            request_type: rtype,
            cid: Cid::new_v1(Multicodec::Raw, &[(ms % 3) as u8]),
            monitor,
            flags: EntryFlags::default(),
        }
    }

    #[test]
    fn windowed_request_types_split_by_window() {
        let spec = WindowSpec::tumbling(SimDuration::from_secs(10));
        let mut sink = windowed_request_types(
            1,
            spec,
            SimDuration::ZERO,
            LatePolicy::Strict,
            SimDuration::from_secs(1),
        );
        use ipfs_mon_tracestore::AnalysisSink as _;
        sink.consume(entry(1_000, 0, RequestType::WantHave));
        sink.consume(entry(2_000, 0, RequestType::WantBlock));
        sink.consume(entry(12_000, 0, RequestType::WantHave));
        let out = sink.finish();
        assert_eq!(out.results.len(), 2);
        let first = &out.results[0].output[0];
        let totals: (u64, u64) = first
            .rows
            .iter()
            .fold((0, 0), |(h, b), &(_, wh, wb)| (h + wh, b + wb));
        assert_eq!(totals, (1, 1));
        assert_eq!(out.results[1].entries, 1);
    }

    #[test]
    fn windowed_netsize_seeds_overlapping_connections() {
        let spec = WindowSpec::tumbling(SimDuration::from_secs(10));
        let peer = PeerId::derived(9, 1);
        let connections = Arc::new(vec![ConnectionRecord {
            monitor: 0,
            peer,
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::Us),
            connected_at: SimTime::from_secs(2),
            disconnected_at: Some(SimTime::from_secs(14)),
        }]);
        let mut sink = windowed_netsize(
            1,
            spec,
            SimDuration::ZERO,
            LatePolicy::Strict,
            SimDuration::from_secs(5),
            connections,
        );
        use ipfs_mon_tracestore::AnalysisSink as _;
        sink.consume(entry(3_000, 0, RequestType::WantHave));
        sink.consume(entry(21_000, 0, RequestType::WantHave));
        let out = sink.finish();
        assert_eq!(out.results.len(), 3);
        // Window 0 ([0,10)s): connection active at snapshot t=5s.
        let w0 = &out.results[0].output;
        assert!(w0.snapshots.iter().any(|s| s.sizes[0] == 1));
        // Window 2 ([20,30)s): connection gone by t=20s.
        let w2 = &out.results[2].output;
        assert!(w2.snapshots.iter().all(|s| s.sizes[0] == 0));
    }
}
