//! The merge-order-independent analyses, ported to the parallel analysis
//! engine ([`AnalysisSink`]).
//!
//! Each sink here is the *canonical* implementation of its analysis: the
//! older in-memory and single-stream entry points (`request_type_series*`,
//! `popularity_scores*`, `per_peer_request_counts_stream`, …) are thin
//! wrappers over the same accumulators, so running a sink serially over a
//! merged stream and running it per monitor via
//! [`ManifestReader::run_parallel`](ipfs_mon_tracestore::ManifestReader::run_parallel)
//! is equivalent *by construction* — and property-tested anyway
//! (`tests/parallel_analysis.rs`).
//!
//! Every sink's `combine` works on exact aggregates (integer counters, bucket
//! maps, requester sets); floating-point results are only derived in
//! `finish`, so partials combine in any order without drift and the parallel
//! output is value-identical to the serial one, not merely close.
//!
//! | sink | analysis | output |
//! |------|----------|--------|
//! | [`RequestTypeSink`] | Fig. 4 want-type series, per monitor | `Vec<RequestTypeSeries>` |
//! | [`PopularitySink`] | raw (RRP) + unique (URP) popularity | [`PopularityScores`] |
//! | [`ActivityCountsSink`] | per-peer counts, multicodec shares | [`ActivityCounts`] |
//! | [`EntryStatsSink`] | per-monitor descriptive stats | `Vec<MonitorEntryStats>` |

use crate::activity::{RequestTypeSeries, TypeSeriesAccum};
use crate::popularity::{PopularityScores, ScoreAccumulator};
use crate::trace::TraceEntry;
use ipfs_mon_analysis::StreamSummary;
use ipfs_mon_simnet::time::{SimDuration, SimTime};
use ipfs_mon_tracestore::{run_sink, AnalysisSink, SegmentError, TraceSource};
use ipfs_mon_types::{Multicodec, PeerId};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Request-type series (Fig. 4)
// ---------------------------------------------------------------------------

/// Builds the Fig. 4 request-type series of *every* monitor in one pass:
/// raw per-type counts (no deduplication, cancels excluded) bucketed by a
/// fixed width, one series per monitor index.
#[derive(Debug, Clone)]
pub struct RequestTypeSink {
    bucket: SimDuration,
    per_monitor: Vec<TypeSeriesAccum>,
}

impl RequestTypeSink {
    /// Creates a sink with the given bucket width (the paper uses daily
    /// buckets for Fig. 4).
    pub fn new(bucket: SimDuration) -> Self {
        Self {
            bucket,
            per_monitor: Vec::new(),
        }
    }

    fn slot(&mut self, monitor: usize) -> &mut TypeSeriesAccum {
        while self.per_monitor.len() <= monitor {
            self.per_monitor.push(TypeSeriesAccum::new(self.bucket));
        }
        &mut self.per_monitor[monitor]
    }
}

impl AnalysisSink for RequestTypeSink {
    type Output = Vec<RequestTypeSeries>;

    fn consume(&mut self, entry: TraceEntry) {
        self.slot(entry.monitor).record(&entry);
    }

    fn combine(&mut self, other: Self) {
        for (monitor, accum) in other.per_monitor.into_iter().enumerate() {
            self.slot(monitor).merge(accum);
        }
    }

    fn finish(self) -> Vec<RequestTypeSeries> {
        self.per_monitor
            .into_iter()
            .map(TypeSeriesAccum::finish)
            .collect()
    }
}

/// One request-type series per monitor from any trace source — the serial
/// reference [`RequestTypeSink`] execution. Row `m` equals
/// [`crate::activity::request_type_series`] on monitor `m`'s raw entries.
pub fn request_type_series_source<T: TraceSource>(
    source: &T,
    bucket: SimDuration,
) -> Result<Vec<RequestTypeSeries>, SegmentError> {
    run_sink(source, RequestTypeSink::new(bucket))
}

// ---------------------------------------------------------------------------
// Popularity (Sec. V-E)
// ---------------------------------------------------------------------------

/// Computes raw (RRP) and unique (URP) request popularity per CID over the
/// primary requests of a stream — the sink form of
/// [`crate::popularity::popularity_scores_stream`].
#[derive(Debug, Clone, Default)]
pub struct PopularitySink {
    accumulator: ScoreAccumulator,
}

impl PopularitySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnalysisSink for PopularitySink {
    type Output = PopularityScores;

    fn consume(&mut self, entry: TraceEntry) {
        if entry.flags.is_primary() && entry.is_request() {
            self.accumulator.add(&entry.cid, entry.peer);
        }
    }

    fn combine(&mut self, other: Self) {
        self.accumulator.merge(other.accumulator);
    }

    fn finish(self) -> PopularityScores {
        self.accumulator.finish()
    }
}

/// Popularity scores from any trace source — the serial reference
/// [`PopularitySink`] execution.
pub fn popularity_scores_source<T: TraceSource>(
    source: &T,
) -> Result<PopularityScores, SegmentError> {
    run_sink(source, PopularitySink::new())
}

// ---------------------------------------------------------------------------
// Activity counts (Table I, outlier peers)
// ---------------------------------------------------------------------------

/// Aggregate request-activity counts of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityCounts {
    /// Primary (deduplicated) request count per peer, sorted descending —
    /// the rows of [`crate::activity::per_peer_request_counts`].
    pub per_peer: Vec<(PeerId, u64)>,
    /// `(codec, raw request count, share)` rows sorted descending — the
    /// rows of [`crate::activity::multicodec_shares`] (computed on *raw*
    /// requests, as the paper derives Table I).
    pub multicodec: Vec<(Multicodec, u64, f64)>,
    /// Total raw requests (wants of either type, duplicates included).
    pub raw_requests: u64,
    /// Raw requests surviving both preprocessing filters.
    pub primary_requests: u64,
    /// Cancel entries.
    pub cancels: u64,
}

/// Counts per-peer and per-multicodec request activity — the sink form of
/// [`crate::activity::per_peer_request_counts_stream`] and
/// [`crate::activity::multicodec_shares`] in one pass.
#[derive(Debug, Clone, Default)]
pub struct ActivityCountsSink {
    per_peer: BTreeMap<PeerId, u64>,
    multicodec: BTreeMap<Multicodec, u64>,
    raw_requests: u64,
    primary_requests: u64,
    cancels: u64,
}

impl ActivityCountsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnalysisSink for ActivityCountsSink {
    type Output = ActivityCounts;

    fn consume(&mut self, entry: TraceEntry) {
        if !entry.is_request() {
            self.cancels += 1;
            return;
        }
        // Table I counts raw requests; the per-peer outlier table counts
        // primary ones — same filters as the wrapped entry points.
        *self.multicodec.entry(entry.cid.codec()).or_insert(0) += 1;
        self.raw_requests += 1;
        if entry.flags.is_primary() {
            *self.per_peer.entry(entry.peer).or_insert(0) += 1;
            self.primary_requests += 1;
        }
    }

    fn combine(&mut self, other: Self) {
        for (peer, count) in other.per_peer {
            *self.per_peer.entry(peer).or_insert(0) += count;
        }
        for (codec, count) in other.multicodec {
            *self.multicodec.entry(codec).or_insert(0) += count;
        }
        self.raw_requests += other.raw_requests;
        self.primary_requests += other.primary_requests;
        self.cancels += other.cancels;
    }

    fn finish(self) -> ActivityCounts {
        let mut per_peer: Vec<(PeerId, u64)> = self.per_peer.into_iter().collect();
        per_peer.sort_by_key(|row| std::cmp::Reverse(row.1));
        let total = self.raw_requests;
        let mut multicodec: Vec<(Multicodec, u64, f64)> = self
            .multicodec
            .into_iter()
            .map(|(codec, count)| {
                let share = if total == 0 {
                    0.0
                } else {
                    count as f64 / total as f64
                };
                (codec, count, share)
            })
            .collect();
        multicodec.sort_by_key(|row| std::cmp::Reverse(row.1));
        ActivityCounts {
            per_peer,
            multicodec,
            raw_requests: self.raw_requests,
            primary_requests: self.primary_requests,
            cancels: self.cancels,
        }
    }
}

/// Activity counts from any trace source — the serial reference
/// [`ActivityCountsSink`] execution.
pub fn activity_counts_source<T: TraceSource>(source: &T) -> Result<ActivityCounts, SegmentError> {
    run_sink(source, ActivityCountsSink::new())
}

// ---------------------------------------------------------------------------
// Descriptive stats
// ---------------------------------------------------------------------------

/// Descriptive statistics of one monitor's entry stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorEntryStats {
    /// Entries observed by the monitor.
    pub entries: u64,
    /// Raw requests among them.
    pub requests: u64,
    /// Cancels among them.
    pub cancels: u64,
    /// Timestamp of the first entry.
    pub first: Option<SimTime>,
    /// Timestamp of the last entry.
    pub last: Option<SimTime>,
    /// Summary of the inter-arrival gaps (milliseconds) of the monitor's
    /// time-sorted stream; `None` with fewer than two entries.
    pub inter_arrival_ms: Option<StreamSummary>,
}

/// Exact per-monitor accumulation: counters and integer moment sums, so
/// partials combine without floating-point drift (all `f64` math is deferred
/// to `finish`).
#[derive(Debug, Clone, Default)]
struct StatsAccum {
    entries: u64,
    requests: u64,
    cancels: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
    gap_count: u64,
    gap_sum: u128,
    gap_sum_sq: u128,
    gap_min: u64,
    gap_max: u64,
}

impl StatsAccum {
    fn record_gap(&mut self, gap_ms: u64) {
        if self.gap_count == 0 {
            self.gap_min = gap_ms;
            self.gap_max = gap_ms;
        } else {
            self.gap_min = self.gap_min.min(gap_ms);
            self.gap_max = self.gap_max.max(gap_ms);
        }
        self.gap_count += 1;
        self.gap_sum += gap_ms as u128;
        self.gap_sum_sq += (gap_ms as u128) * (gap_ms as u128);
    }

    fn record(&mut self, entry: &TraceEntry) {
        let ts = entry.timestamp;
        if let Some(last) = self.last {
            // Per-monitor streams are time-sorted by every driver; the
            // saturation only guards against a contract-violating caller.
            self.record_gap(ts.as_millis().saturating_sub(last.as_millis()));
        }
        self.first = Some(self.first.map_or(ts, |f| f.min(ts)));
        self.last = Some(self.last.map_or(ts, |l| l.max(ts)));
        self.entries += 1;
        if entry.is_request() {
            self.requests += 1;
        } else {
            self.cancels += 1;
        }
    }

    /// Merges two partials of the same monitor stream. This is where the
    /// sink contract's *time-contiguous runs* requirement bites: the
    /// earlier partial (by first timestamp) is treated as wholly preceding
    /// the later one — commutative — and the single boundary gap between
    /// them is counted, so splitting a stream at any point and
    /// re-combining loses nothing. Interleaved partials of one monitor
    /// (which no driver produces) would mis-attribute gaps.
    fn merge(&mut self, other: Self) {
        if other.entries == 0 {
            return;
        }
        if self.entries == 0 {
            *self = other;
            return;
        }
        let (mut earlier, later) = if other.first < self.first {
            (other, std::mem::take(self))
        } else {
            (std::mem::take(self), other)
        };
        let boundary = later
            .first
            .expect("non-empty partial has a first timestamp")
            .as_millis()
            .saturating_sub(
                earlier
                    .last
                    .expect("non-empty partial has a last timestamp")
                    .as_millis(),
            );
        earlier.record_gap(boundary);
        earlier.entries += later.entries;
        earlier.requests += later.requests;
        earlier.cancels += later.cancels;
        earlier.last = earlier.last.max(later.last);
        if later.gap_count > 0 {
            earlier.gap_min = earlier.gap_min.min(later.gap_min);
            earlier.gap_max = earlier.gap_max.max(later.gap_max);
            earlier.gap_count += later.gap_count;
            earlier.gap_sum += later.gap_sum;
            earlier.gap_sum_sq += later.gap_sum_sq;
        }
        *self = earlier;
    }

    fn finish(self) -> MonitorEntryStats {
        let inter_arrival_ms = (self.gap_count > 0).then(|| {
            let count = self.gap_count as f64;
            let mean = self.gap_sum as f64 / count;
            let variance = (self.gap_sum_sq as f64 / count - mean * mean).max(0.0);
            StreamSummary {
                count: self.gap_count as usize,
                mean,
                std_dev: variance.sqrt(),
                min: self.gap_min as f64,
                max: self.gap_max as f64,
            }
        });
        MonitorEntryStats {
            entries: self.entries,
            requests: self.requests,
            cancels: self.cancels,
            first: self.first,
            last: self.last,
            inter_arrival_ms,
        }
    }
}

/// Computes per-monitor descriptive statistics (entry/request/cancel counts,
/// trace span, inter-arrival summary) in one pass. State is keyed by
/// monitor, so the sink is indifferent to how the monitors' streams are
/// interleaved — the property every [`AnalysisSink`] needs.
#[derive(Debug, Clone, Default)]
pub struct EntryStatsSink {
    per_monitor: Vec<StatsAccum>,
}

impl EntryStatsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, monitor: usize) -> &mut StatsAccum {
        while self.per_monitor.len() <= monitor {
            self.per_monitor.push(StatsAccum::default());
        }
        &mut self.per_monitor[monitor]
    }
}

impl AnalysisSink for EntryStatsSink {
    type Output = Vec<MonitorEntryStats>;

    fn consume(&mut self, entry: TraceEntry) {
        self.slot(entry.monitor).record(&entry);
    }

    fn combine(&mut self, other: Self) {
        for (monitor, accum) in other.per_monitor.into_iter().enumerate() {
            self.slot(monitor).merge(accum);
        }
    }

    fn finish(self) -> Vec<MonitorEntryStats> {
        self.per_monitor
            .into_iter()
            .map(StatsAccum::finish)
            .collect()
    }
}

/// Per-monitor descriptive statistics from any trace source — the serial
/// reference [`EntryStatsSink`] execution.
pub fn entry_stats_source<T: TraceSource>(
    source: &T,
) -> Result<Vec<MonitorEntryStats>, SegmentError> {
    run_sink(source, EntryStatsSink::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EntryFlags;
    use ipfs_mon_bitswap::RequestType;
    use ipfs_mon_types::{Cid, Country, Multiaddr, Transport};

    fn entry(ms: u64, peer: u64, monitor: usize, rtype: RequestType) -> TraceEntry {
        TraceEntry {
            timestamp: SimTime::from_millis(ms),
            peer: PeerId::derived(4, peer),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::De),
            request_type: rtype,
            cid: Cid::new_v1(Multicodec::Raw, &[peer as u8]),
            monitor,
            flags: EntryFlags::default(),
        }
    }

    fn sample_entries() -> Vec<TraceEntry> {
        let mut entries = Vec::new();
        for i in 0..40u64 {
            let rtype = match i % 5 {
                0 => RequestType::WantBlock,
                4 => RequestType::Cancel,
                _ => RequestType::WantHave,
            };
            entries.push(entry(i * 250, i % 7, (i % 2) as usize, rtype));
        }
        entries
    }

    fn fold<K: AnalysisSink>(mut sink: K, entries: &[TraceEntry]) -> K {
        for e in entries {
            sink.consume(e.clone());
        }
        sink
    }

    /// Splitting a stream at any point and combining the partials must equal
    /// consuming it whole — the sink contract, on every ported sink.
    #[test]
    fn split_and_combine_equals_whole() {
        let entries = sample_entries();
        for split in [0, 1, 13, 20, 39, 40] {
            let (a, b) = entries.split_at(split);

            let whole = fold(EntryStatsSink::new(), &entries).finish();
            let mut left = fold(EntryStatsSink::new(), a);
            left.combine(fold(EntryStatsSink::new(), b));
            assert_eq!(whole, left.finish(), "stats split at {split}");

            let whole = fold(PopularitySink::new(), &entries).finish();
            let mut left = fold(PopularitySink::new(), a);
            left.combine(fold(PopularitySink::new(), b));
            assert_eq!(whole, left.finish(), "popularity split at {split}");

            let bucket = SimDuration::from_secs(1);
            let whole = fold(RequestTypeSink::new(bucket), &entries).finish();
            let mut left = fold(RequestTypeSink::new(bucket), a);
            left.combine(fold(RequestTypeSink::new(bucket), b));
            let merged = left.finish();
            assert_eq!(whole.len(), merged.len());
            for (w, m) in whole.iter().zip(&merged) {
                assert_eq!(w.rows, m.rows, "series split at {split}");
            }

            let whole = fold(ActivityCountsSink::new(), &entries).finish();
            let mut left = fold(ActivityCountsSink::new(), a);
            left.combine(fold(ActivityCountsSink::new(), b));
            assert_eq!(whole, left.finish(), "activity split at {split}");
        }
    }

    #[test]
    fn stats_track_span_and_gaps() {
        let entries = vec![
            entry(1_000, 1, 0, RequestType::WantHave),
            entry(1_500, 2, 0, RequestType::WantHave),
            entry(3_500, 3, 0, RequestType::Cancel),
        ];
        let stats = fold(EntryStatsSink::new(), &entries).finish();
        assert_eq!(stats.len(), 1);
        let m = &stats[0];
        assert_eq!((m.entries, m.requests, m.cancels), (3, 2, 1));
        assert_eq!(m.first, Some(SimTime::from_millis(1_000)));
        assert_eq!(m.last, Some(SimTime::from_millis(3_500)));
        let gaps = m.inter_arrival_ms.unwrap();
        assert_eq!(gaps.count, 2);
        assert_eq!(gaps.min, 500.0);
        assert_eq!(gaps.max, 2_000.0);
        assert!((gaps.mean - 1_250.0).abs() < 1e-9);
    }

    #[test]
    fn activity_counts_match_wrapped_entry_points() {
        let entries = sample_entries();
        let counts = fold(ActivityCountsSink::new(), &entries).finish();
        let per_peer = crate::activity::per_peer_request_counts_stream(entries.iter().cloned());
        assert_eq!(counts.per_peer, per_peer);
        assert_eq!(counts.raw_requests + counts.cancels, entries.len() as u64);
        let share_sum: f64 = counts.multicodec.iter().map(|(_, _, s)| s).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }
}
