//! Network-size estimation and monitoring coverage (Sec. IV-C / V-C).
//!
//! From the monitors' connection logs this module derives peer-set snapshots,
//! applies the two estimators (capture–recapture and committee occupancy),
//! compares against a DHT crawl, and computes the monitoring coverage — the
//! fraction of the network each monitor (and the joint deployment) receives
//! Bitswap messages from.
//!
//! Estimation is incremental: [`SnapshotBuilder`] consumes connection events
//! and entries one at a time and never materializes the trace — its state is
//! the connection endpoints (footer metadata, orders of magnitude rarer than
//! entries), the sweep's per-monitor *active-connection* multisets, and the
//! unique-peer sets the report itself needs. It works over any
//! [`TraceSource`] via [`estimate_network_size_source`] — an in-memory
//! dataset, a single segment, or a multi-segment manifest all produce
//! identical reports.

use crate::trace::MonitoringDataset;
use ipfs_mon_analysis::{committee_estimate, summarize, two_monitor_estimate, Summary};
use ipfs_mon_simnet::time::{SimDuration, SimTime};
use ipfs_mon_tracestore::{ConnectionRecord, SegmentError, TraceEntry, TraceSource};
use ipfs_mon_types::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One peer-set snapshot: what each monitor was connected to at an instant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerSetSnapshot {
    /// Snapshot time.
    pub at: SimTime,
    /// Per-monitor peer-set sizes.
    pub sizes: Vec<usize>,
    /// Size of the union over all monitors.
    pub union_size: usize,
    /// Size of the pairwise intersection of monitors 0 and 1 (if at least two
    /// monitors exist).
    pub intersection_01: Option<usize>,
    /// Estimate from the two-monitor capture–recapture formula (eq. 1).
    pub estimate_capture_recapture: Option<f64>,
    /// Estimate from the committee-occupancy formula (eq. 3), using the mean
    /// per-monitor peer-set size as `w`.
    pub estimate_committee: Option<f64>,
}

/// Aggregate of many snapshots over an observation window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkSizeReport {
    /// The individual snapshots.
    pub snapshots: Vec<PeerSetSnapshot>,
    /// Summary of the capture–recapture estimates across snapshots.
    pub capture_recapture: Option<Summary>,
    /// Summary of the committee-occupancy estimates across snapshots.
    pub committee: Option<Summary>,
    /// Summary of the per-snapshot union sizes.
    pub union_sizes: Option<Summary>,
    /// Unique peers connected to each monitor over the whole window.
    pub weekly_unique_per_monitor: Vec<usize>,
    /// Unique peers connected to any monitor over the whole window.
    pub weekly_unique_union: usize,
    /// Unique Bitswap-active peers (sent at least one entry) per monitor.
    pub bitswap_active_per_monitor: Vec<usize>,
    /// Unique Bitswap-active peers across monitors.
    pub bitswap_active_union: usize,
}

/// Incrementally builds a [`NetworkSizeReport`] from connection events and
/// trace entries — no materialized dataset required.
///
/// Feed every [`ConnectionRecord`] through
/// [`SnapshotBuilder::observe_connection`] and every trace entry through
/// [`SnapshotBuilder::observe_entry`] (order does not matter), then call
/// [`SnapshotBuilder::finish`]: the builder turns the records into
/// connect/disconnect events, sweeps the snapshot grid once in event-time
/// order, and runs both estimators on each snapshot. Memory holds the
/// buffered connection endpoints (connection records are footer metadata —
/// orders of magnitude rarer than entries), the sweep's *currently active*
/// connections per monitor, and the unique-peer sets reported per monitor;
/// entries themselves are never retained.
#[derive(Debug, Clone)]
pub struct SnapshotBuilder {
    monitors: usize,
    start: SimTime,
    end: SimTime,
    interval: SimDuration,
    /// `(time, is_disconnect, monitor, peer)` — connection endpoints.
    events: Vec<(SimTime, bool, usize, PeerId)>,
    weekly_unique: Vec<HashSet<PeerId>>,
    bitswap_active: Vec<HashSet<PeerId>>,
}

impl SnapshotBuilder {
    /// Creates a builder for snapshots every `interval` over `[start, end]`.
    pub fn new(monitors: usize, start: SimTime, end: SimTime, interval: SimDuration) -> Self {
        assert!(interval.as_millis() > 0, "interval must be positive");
        Self {
            monitors,
            start,
            end,
            interval,
            events: Vec::new(),
            weekly_unique: vec![HashSet::new(); monitors],
            bitswap_active: vec![HashSet::new(); monitors],
        }
    }

    /// Accounts one connection record: its endpoints become sweep events and
    /// its peer counts toward the whole-window uniques of its monitor.
    pub fn observe_connection(&mut self, record: &ConnectionRecord) {
        debug_assert!(record.monitor < self.monitors);
        self.weekly_unique[record.monitor].insert(record.peer);
        self.events
            .push((record.connected_at, false, record.monitor, record.peer));
        if let Some(at) = record.disconnected_at {
            self.events.push((at, true, record.monitor, record.peer));
        }
    }

    /// Accounts one trace entry (flags and request type are irrelevant here:
    /// any observed entry makes its sender Bitswap-active, as in the paper).
    pub fn observe_entry(&mut self, entry: &TraceEntry) {
        debug_assert!(entry.monitor < self.monitors);
        self.bitswap_active[entry.monitor].insert(entry.peer);
    }

    /// Merges another builder over the same snapshot grid: sweep events
    /// concatenate and the unique-peer sets union. Order-invariant —
    /// [`SnapshotBuilder::finish`] sorts the events by a full deterministic
    /// key before sweeping — which is what lets the windowed netsize sink
    /// combine partial builders under `run_parallel`.
    ///
    /// # Panics
    ///
    /// Panics if the two builders were created over different grids.
    pub fn merge(&mut self, other: Self) {
        assert!(
            self.monitors == other.monitors
                && self.start == other.start
                && self.end == other.end
                && self.interval == other.interval,
            "snapshot builders must share a grid to merge"
        );
        self.events.extend(other.events);
        for (mine, theirs) in self.weekly_unique.iter_mut().zip(other.weekly_unique) {
            mine.extend(theirs);
        }
        for (mine, theirs) in self.bitswap_active.iter_mut().zip(other.bitswap_active) {
            mine.extend(theirs);
        }
    }

    /// Sweeps the snapshot grid and assembles the report.
    pub fn finish(self) -> NetworkSizeReport {
        let monitors = self.monitors;
        let mut events = self.events;
        // Connects sort before disconnects at equal times so an active count
        // never dips negative; membership at a snapshot is unaffected either
        // way (both endpoints with time <= t are applied before reading).
        events.sort_by_key(|&(t, is_disconnect, monitor, peer)| (t, is_disconnect, monitor, peer));

        // Per monitor: multiset of active connections per peer (overlapping
        // records for the same peer each count once until their disconnect).
        let mut active: Vec<HashMap<PeerId, u32>> = vec![HashMap::new(); monitors];
        let mut next_event = 0usize;
        let mut snapshots = Vec::new();
        let mut t = self.start;
        while t <= self.end {
            while let Some(&(at, is_disconnect, monitor, peer)) = events.get(next_event) {
                // `active_at` semantics: connected_at <= t && t < disconnected_at,
                // so both endpoint kinds apply once their time is <= t.
                if at > t {
                    break;
                }
                next_event += 1;
                if is_disconnect {
                    if let Some(count) = active[monitor].get_mut(&peer) {
                        *count -= 1;
                        if *count == 0 {
                            active[monitor].remove(&peer);
                        }
                    }
                } else {
                    *active[monitor].entry(peer).or_insert(0) += 1;
                }
            }

            let sizes: Vec<usize> = active.iter().map(HashMap::len).collect();
            let union: HashSet<PeerId> = active.iter().flat_map(HashMap::keys).copied().collect();
            let intersection_01 = if monitors >= 2 {
                let (small, large) = if active[0].len() <= active[1].len() {
                    (&active[0], &active[1])
                } else {
                    (&active[1], &active[0])
                };
                Some(small.keys().filter(|p| large.contains_key(*p)).count())
            } else {
                None
            };
            let estimate_capture_recapture =
                intersection_01.and_then(|k| two_monitor_estimate(sizes[0], sizes[1], k).ok());
            let mean_w = if monitors > 0 {
                sizes.iter().sum::<usize>() as f64 / monitors as f64
            } else {
                0.0
            };
            let estimate_committee = committee_estimate(union.len(), monitors, mean_w).ok();
            snapshots.push(PeerSetSnapshot {
                at: t,
                sizes,
                union_size: union.len(),
                intersection_01,
                estimate_capture_recapture,
                estimate_committee,
            });
            t += self.interval;
        }

        let capture: Vec<f64> = snapshots
            .iter()
            .filter_map(|s| s.estimate_capture_recapture)
            .collect();
        let committee: Vec<f64> = snapshots
            .iter()
            .filter_map(|s| s.estimate_committee)
            .collect();
        let unions: Vec<f64> = snapshots.iter().map(|s| s.union_size as f64).collect();

        let weekly_union: HashSet<PeerId> = self.weekly_unique.iter().flatten().copied().collect();
        let bitswap_union: HashSet<PeerId> =
            self.bitswap_active.iter().flatten().copied().collect();

        NetworkSizeReport {
            snapshots,
            capture_recapture: summarize(&capture),
            committee: summarize(&committee),
            union_sizes: summarize(&unions),
            weekly_unique_per_monitor: self.weekly_unique.iter().map(HashSet::len).collect(),
            weekly_unique_union: weekly_union.len(),
            bitswap_active_per_monitor: self.bitswap_active.iter().map(HashSet::len).collect(),
            bitswap_active_union: bitswap_union.len(),
        }
    }
}

/// Computes peer-set snapshots every `interval` over `[start, end]` and runs
/// both estimators on each, streaming from any [`TraceSource`] — the trace is
/// never materialized, so this runs at constant memory over a multi-segment
/// manifest just as over an in-memory dataset, with identical output.
pub fn estimate_network_size_source<T: TraceSource>(
    source: &T,
    start: SimTime,
    end: SimTime,
    interval: SimDuration,
) -> Result<NetworkSizeReport, SegmentError> {
    let mut builder = SnapshotBuilder::new(source.monitor_count(), start, end, interval);
    let mut entries = source.merged_entries();
    for entry in &mut entries {
        builder.observe_entry(&entry);
    }
    if let Some(error) = entries.take_error() {
        return Err(error);
    }
    for record in source.connection_records() {
        builder.observe_connection(&record);
    }
    Ok(builder.finish())
}

/// Computes peer-set snapshots every `interval` over `[start, end]` and runs
/// both estimators on each. Thin wrapper over [`SnapshotBuilder`] for the
/// in-memory dataset; the builder is order-insensitive, so the dataset is
/// fed by reference without the merged stream's clone-and-sort.
pub fn estimate_network_size(
    dataset: &MonitoringDataset,
    start: SimTime,
    end: SimTime,
    interval: SimDuration,
) -> NetworkSizeReport {
    let mut builder = SnapshotBuilder::new(dataset.monitor_count(), start, end, interval);
    for entry in dataset.entries.iter().flatten() {
        builder.observe_entry(entry);
    }
    for record in &dataset.connections {
        builder.observe_connection(record);
    }
    builder.finish()
}

/// Monitoring coverage relative to a reference network size (the paper uses
/// the crawler-derived size as the conservative denominator).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Reference network size used as the denominator.
    pub reference_size: f64,
    /// Average per-monitor coverage (mean peer-set size / reference).
    pub per_monitor: Vec<f64>,
    /// Average joint coverage (mean union size / reference).
    pub joint: f64,
}

/// Computes coverage from a [`NetworkSizeReport`] and a reference size.
pub fn coverage(report: &NetworkSizeReport, reference_size: f64) -> CoverageReport {
    assert!(reference_size > 0.0, "reference size must be positive");
    let monitors = report.weekly_unique_per_monitor.len();
    let mut per_monitor_means = vec![0.0f64; monitors];
    if !report.snapshots.is_empty() {
        for snapshot in &report.snapshots {
            for (m, &size) in snapshot.sizes.iter().enumerate() {
                per_monitor_means[m] += size as f64;
            }
        }
        for mean in per_monitor_means.iter_mut() {
            *mean /= report.snapshots.len() as f64;
        }
    }
    let joint_mean = report.union_sizes.map(|s| s.mean).unwrap_or(0.0);
    CoverageReport {
        reference_size,
        per_monitor: per_monitor_means
            .iter()
            .map(|m| (m / reference_size).min(1.0))
            .collect(),
        joint: (joint_mean / reference_size).min(1.0),
    }
}

/// Peer-ID uniformity data for Fig. 3: the key-space positions (in `[0, 1)`)
/// of all peers connected to `monitor` at time `at`.
pub fn peer_id_positions(dataset: &MonitoringDataset, monitor: usize, at: SimTime) -> Vec<f64> {
    dataset
        .peer_set_at(monitor, at)
        .iter()
        .map(|p| p.as_unit_fraction())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ConnectionRecord, MonitoringDataset, TraceEntry};
    use ipfs_mon_bitswap::RequestType;
    use ipfs_mon_types::{Cid, Country, Multiaddr, Multicodec, Transport};

    fn addr() -> Multiaddr {
        Multiaddr::new(1, 4001, Transport::Tcp, Country::Us)
    }

    /// Builds a dataset where `n` peers exist, each connected to monitor 0
    /// with probability `p0` and monitor 1 with probability `p1` (derived
    /// deterministically from the peer number).
    fn synthetic_dataset(n: u64, p0: f64, p1: f64) -> MonitoringDataset {
        let mut ds = MonitoringDataset::new(vec!["us".into(), "de".into()]);
        for i in 0..n {
            let peer = PeerId::derived(42, i);
            // Derive independent, deterministic "dice" for the two attach
            // decisions (independent of the peer ID itself, so the connected
            // peer sets remain uniform samples of the key space).
            let u0 = PeerId::derived(143, i).as_unit_fraction();
            let u1 = PeerId::derived(144, i).as_unit_fraction();
            for (m, (u, p)) in [(u0, p0), (u1, p1)].iter().enumerate() {
                if u < p {
                    ds.connections.push(ConnectionRecord {
                        monitor: m,
                        peer,
                        address: addr(),
                        connected_at: SimTime::ZERO,
                        disconnected_at: None,
                    });
                }
            }
        }
        ds
    }

    #[test]
    fn estimators_recover_population_size() {
        let n = 20_000;
        let ds = synthetic_dataset(n, 0.6, 0.5);
        let report = estimate_network_size(
            &ds,
            SimTime::from_secs(0),
            SimTime::from_secs(0),
            SimDuration::from_secs(1),
        );
        let capture = report.capture_recapture.unwrap().mean;
        let committee = report.committee.unwrap().mean;
        assert!(
            (capture - n as f64).abs() / (n as f64) < 0.05,
            "capture-recapture {capture}"
        );
        assert!(
            (committee - n as f64).abs() / (n as f64) < 0.05,
            "committee {committee}"
        );
    }

    #[test]
    fn coverage_matches_attach_probabilities() {
        let n = 10_000;
        let ds = synthetic_dataset(n, 0.54, 0.49);
        let report = estimate_network_size(
            &ds,
            SimTime::from_secs(0),
            SimTime::from_secs(0),
            SimDuration::from_secs(1),
        );
        let cov = coverage(&report, n as f64);
        assert!(
            (cov.per_monitor[0] - 0.54).abs() < 0.03,
            "{:?}",
            cov.per_monitor
        );
        assert!(
            (cov.per_monitor[1] - 0.49).abs() < 0.03,
            "{:?}",
            cov.per_monitor
        );
        let expected_joint = 1.0 - (1.0 - 0.54) * (1.0 - 0.49);
        assert!(
            (cov.joint - expected_joint).abs() < 0.03,
            "joint {}",
            cov.joint
        );
    }

    #[test]
    fn weekly_uniques_and_bitswap_active_counts() {
        let mut ds = synthetic_dataset(1_000, 0.5, 0.5);
        // Make 20 peers Bitswap-active on monitor 0 and 10 on monitor 1.
        for i in 0..20u64 {
            ds.entries[0].push(TraceEntry {
                timestamp: SimTime::from_secs(i),
                peer: PeerId::derived(42, i),
                address: addr(),
                request_type: RequestType::WantHave,
                cid: Cid::new_v1(Multicodec::Raw, &[1]),
                monitor: 0,
                flags: Default::default(),
            });
        }
        for i in 0..10u64 {
            ds.entries[1].push(TraceEntry {
                timestamp: SimTime::from_secs(i),
                peer: PeerId::derived(42, i),
                address: addr(),
                request_type: RequestType::WantBlock,
                cid: Cid::new_v1(Multicodec::Raw, &[2]),
                monitor: 1,
                flags: Default::default(),
            });
        }
        let report = estimate_network_size(
            &ds,
            SimTime::from_secs(0),
            SimTime::from_secs(0),
            SimDuration::from_secs(1),
        );
        assert_eq!(report.bitswap_active_per_monitor, vec![20, 10]);
        assert_eq!(report.bitswap_active_union, 20);
        assert!(report.weekly_unique_union >= report.weekly_unique_per_monitor[0]);
    }

    #[test]
    fn multiple_snapshots_are_collected() {
        let ds = synthetic_dataset(500, 0.7, 0.7);
        let report = estimate_network_size(
            &ds,
            SimTime::from_secs(0),
            SimTime::from_secs(3_600),
            SimDuration::from_mins(10),
        );
        assert_eq!(report.snapshots.len(), 7);
    }

    #[test]
    fn peer_positions_are_unit_fractions() {
        let ds = synthetic_dataset(2_000, 0.5, 0.5);
        let positions = peer_id_positions(&ds, 0, SimTime::ZERO);
        assert!(!positions.is_empty());
        assert!(positions.iter().all(|p| (0.0..=1.0).contains(p)));
        // They come from SHA-256-derived IDs, so they should be close to
        // uniform.
        let dev = ipfs_mon_analysis::qq_uniform_deviation(&positions, 51);
        assert!(dev < 0.08, "deviation {dev}");
    }

    #[test]
    #[should_panic(expected = "reference size must be positive")]
    fn coverage_rejects_zero_reference() {
        let ds = synthetic_dataset(10, 0.5, 0.5);
        let report =
            estimate_network_size(&ds, SimTime::ZERO, SimTime::ZERO, SimDuration::from_secs(1));
        coverage(&report, 0.0);
    }
}
