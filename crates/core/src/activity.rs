//! Activity-level and activity-structure analyses (Sec. V-D, Fig. 4, Fig. 6,
//! Tables I and II).
//!
//! Everything here operates on traces:
//!
//! * requests over time, broken down by request type (Fig. 4 — the
//!   `WANT_BLOCK` → `WANT_HAVE` transition after the v0.5 release);
//! * request shares by multicodec (Table I) — computed on *raw* requests, as
//!   in the paper;
//! * request shares by origin country (Table II) — computed on the unified,
//!   deduplicated trace;
//! * request rates by origin group — gateway vs non-gateway vs a designated
//!   dominant operator (Fig. 6).

use crate::trace::{MonitoringDataset, UnifiedTrace};
use ipfs_mon_bitswap::RequestType;
use ipfs_mon_simnet::metrics::BucketedSeries;
use ipfs_mon_simnet::time::{SimDuration, SimTime};
use ipfs_mon_types::{Country, Multicodec, PeerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Requests per time bucket, per request type (Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTypeSeries {
    /// Bucket width used.
    pub bucket: SimDuration,
    /// `(bucket start, WANT_HAVE count, WANT_BLOCK count)` rows, dense from
    /// the first to the last non-empty bucket.
    pub rows: Vec<(SimTime, u64, u64)>,
}

/// The per-stream accumulator behind every Fig. 4 entry point (in-memory,
/// streaming, and the per-monitor [`crate::sinks::RequestTypeSink`]): two
/// bucketed counters, one per want type, raw (no deduplication) and without
/// cancels. Keeping all entry points on this one type is what makes their
/// equivalence an identity rather than a proof obligation.
#[derive(Debug, Clone)]
pub(crate) struct TypeSeriesAccum {
    bucket: SimDuration,
    want_have: BucketedSeries,
    want_block: BucketedSeries,
}

impl TypeSeriesAccum {
    pub(crate) fn new(bucket: SimDuration) -> Self {
        Self {
            bucket,
            want_have: BucketedSeries::new(bucket),
            want_block: BucketedSeries::new(bucket),
        }
    }

    pub(crate) fn record(&mut self, entry: &crate::trace::TraceEntry) {
        match entry.request_type {
            RequestType::WantHave => self.want_have.record(entry.timestamp),
            RequestType::WantBlock => self.want_block.record(entry.timestamp),
            RequestType::Cancel => {}
        }
    }

    /// Merges another accumulator over the same bucket width (bucket counts
    /// are plain sums, so merging partials of any partition of a stream
    /// equals accumulating the whole stream).
    pub(crate) fn merge(&mut self, other: Self) {
        self.want_have.merge(&other.want_have);
        self.want_block.merge(&other.want_block);
    }

    pub(crate) fn finish(self) -> RequestTypeSeries {
        assemble_request_type_series(self.want_have, self.want_block, self.bucket)
    }
}

/// Computes the Fig. 4 series from a single monitor's raw entries (the paper
/// plots the view of monitor `us`), counting only requests (no cancels) and
/// without deduplication (the figure shows raw observed request volume).
pub fn request_type_series(
    dataset: &MonitoringDataset,
    monitor: usize,
    bucket: SimDuration,
) -> RequestTypeSeries {
    let mut accum = TypeSeriesAccum::new(bucket);
    for entry in &dataset.entries[monitor] {
        accum.record(entry);
    }
    accum.finish()
}

/// Densifies the two per-type series into aligned rows.
fn assemble_request_type_series(
    want_have: BucketedSeries,
    want_block: BucketedSeries,
    bucket: SimDuration,
) -> RequestTypeSeries {
    let last_have = want_have.dense().len();
    let last_block = want_block.dense().len();
    let buckets = last_have.max(last_block);
    let have_dense = want_have.dense();
    let block_dense = want_block.dense();
    let rows = (0..buckets)
        .map(|i| {
            let at = SimTime::from_millis(i as u64 * bucket.as_millis());
            let h = have_dense.get(i).map(|&(_, c)| c).unwrap_or(0);
            let b = block_dense.get(i).map(|&(_, c)| c).unwrap_or(0);
            (at, h, b)
        })
        .collect();
    RequestTypeSeries { bucket, rows }
}

/// Request shares by multicodec (Table I), computed over raw requests
/// (cancels excluded), exactly as the paper derives its Table I from raw,
/// unprocessed traces.
pub fn multicodec_shares(dataset: &MonitoringDataset) -> Vec<(Multicodec, u64, f64)> {
    let mut counts: BTreeMap<Multicodec, u64> = BTreeMap::new();
    let mut total = 0u64;
    for entries in &dataset.entries {
        for entry in entries {
            if !entry.is_request() {
                continue;
            }
            *counts.entry(entry.cid.codec()).or_insert(0) += 1;
            total += 1;
        }
    }
    let mut rows: Vec<(Multicodec, u64, f64)> = counts
        .into_iter()
        .map(|(codec, count)| {
            let share = if total == 0 {
                0.0
            } else {
                count as f64 / total as f64
            };
            (codec, count, share)
        })
        .collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1));
    rows
}

/// Request shares by origin country (Table II), computed on the unified,
/// deduplicated trace for a given window.
pub fn country_shares(
    trace: &UnifiedTrace,
    from: SimTime,
    to: SimTime,
) -> Vec<(Country, u64, f64)> {
    let mut counts: BTreeMap<Country, u64> = BTreeMap::new();
    let mut total = 0u64;
    for entry in trace.primary_requests() {
        if entry.timestamp < from || entry.timestamp > to {
            continue;
        }
        *counts.entry(entry.address.country).or_insert(0) += 1;
        total += 1;
    }
    let mut rows: Vec<(Country, u64, f64)> = counts
        .into_iter()
        .map(|(country, count)| {
            let share = if total == 0 {
                0.0
            } else {
                count as f64 / total as f64
            };
            (country, count, share)
        })
        .collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1));
    rows
}

/// Request-rate series by origin group for Fig. 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OriginGroupRates {
    /// Bucket width the rates are computed over.
    pub bucket: SimDuration,
    /// `(bucket start, all-gateway rate, dominant-operator rate, non-gateway
    /// rate)` rows in requests per second.
    pub rows: Vec<(SimTime, f64, f64, f64)>,
    /// Totals per group over the whole trace (gateway, dominant, non-gateway).
    pub totals: (u64, u64, u64),
}

/// Computes deduplicated request rates split into all-gateway traffic, the
/// traffic of one dominant operator ("Cloudflare" in the paper), and
/// non-gateway ("homegrown") traffic.
pub fn origin_group_rates(
    trace: &UnifiedTrace,
    gateway_peers: &HashSet<PeerId>,
    dominant_peers: &HashSet<PeerId>,
    bucket: SimDuration,
) -> OriginGroupRates {
    let mut gateway = BucketedSeries::new(bucket);
    let mut dominant = BucketedSeries::new(bucket);
    let mut other = BucketedSeries::new(bucket);
    let mut totals = (0u64, 0u64, 0u64);
    for entry in trace.primary_requests() {
        if gateway_peers.contains(&entry.peer) {
            gateway.record(entry.timestamp);
            totals.0 += 1;
            if dominant_peers.contains(&entry.peer) {
                dominant.record(entry.timestamp);
                totals.1 += 1;
            }
        } else {
            other.record(entry.timestamp);
            totals.2 += 1;
        }
    }
    let width_secs = bucket.as_secs_f64();
    let buckets = gateway
        .dense()
        .len()
        .max(dominant.dense().len())
        .max(other.dense().len());
    let g = gateway.dense();
    let d = dominant.dense();
    let o = other.dense();
    let rows = (0..buckets)
        .map(|i| {
            let at = SimTime::from_millis(i as u64 * bucket.as_millis());
            let rate = |series: &Vec<(SimTime, u64)>| {
                series
                    .get(i)
                    .map(|&(_, c)| c as f64 / width_secs)
                    .unwrap_or(0.0)
            };
            (at, rate(&g), rate(&d), rate(&o))
        })
        .collect();
    OriginGroupRates {
        bucket,
        rows,
        totals,
    }
}

/// Per-peer request counts (useful for spotting the outlier nodes the paper
/// mentions and as input to the TNW attack's target selection).
pub fn per_peer_request_counts(trace: &UnifiedTrace) -> Vec<(PeerId, u64)> {
    let mut counts: BTreeMap<PeerId, u64> = BTreeMap::new();
    for entry in trace.primary_requests() {
        *counts.entry(entry.peer).or_insert(0) += 1;
    }
    let mut rows: Vec<(PeerId, u64)> = counts.into_iter().collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1));
    rows
}

/// Streaming counterpart of [`per_peer_request_counts`]: aggregates over any
/// entry stream (e.g. a flagged tracestore segment stream), keeping only the
/// per-peer counters in memory. Non-primary entries and cancels are filtered
/// out, matching the in-memory path.
pub fn per_peer_request_counts_stream<I: IntoIterator<Item = crate::trace::TraceEntry>>(
    entries: I,
) -> Vec<(PeerId, u64)> {
    use ipfs_mon_tracestore::AnalysisSink;
    let mut sink = crate::sinks::ActivityCountsSink::new();
    for entry in entries {
        sink.consume(entry);
    }
    sink.finish().per_peer
}

/// Streaming counterpart of [`request_type_series`]: builds the Fig. 4 series
/// from one monitor's raw entry stream (e.g.
/// `TraceReader::stream_monitor(m)`) without materializing the trace.
pub fn request_type_series_stream<I: IntoIterator<Item = crate::trace::TraceEntry>>(
    entries: I,
    bucket: SimDuration,
) -> RequestTypeSeries {
    let mut accum = TypeSeriesAccum::new(bucket);
    for entry in entries {
        accum.record(&entry);
    }
    accum.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EntryFlags, TraceEntry};
    use ipfs_mon_types::{Cid, Multiaddr, Transport};

    fn entry_at(
        secs: u64,
        peer: u64,
        rtype: RequestType,
        codec: Multicodec,
        country: Country,
    ) -> TraceEntry {
        TraceEntry {
            timestamp: SimTime::from_secs(secs),
            peer: PeerId::derived(9, peer),
            address: Multiaddr::new(1, 4001, Transport::Tcp, country),
            request_type: rtype,
            cid: Cid::new_v1(codec, &[(peer % 250) as u8, (secs % 250) as u8]),
            monitor: 0,
            flags: EntryFlags::default(),
        }
    }

    #[test]
    fn request_type_series_tracks_transition() {
        let mut ds = MonitoringDataset::new(vec!["us".into()]);
        // Day 0: only WANT_BLOCK; day 2: only WANT_HAVE.
        for i in 0..10 {
            ds.entries[0].push(entry_at(
                i * 60,
                i,
                RequestType::WantBlock,
                Multicodec::Raw,
                Country::Us,
            ));
        }
        for i in 0..20 {
            ds.entries[0].push(entry_at(
                2 * 86_400 + i * 60,
                i,
                RequestType::WantHave,
                Multicodec::Raw,
                Country::Us,
            ));
        }
        let series = request_type_series(&ds, 0, SimDuration::from_days(1));
        assert_eq!(series.rows.len(), 3);
        assert_eq!(series.rows[0].1, 0);
        assert_eq!(series.rows[0].2, 10);
        assert_eq!(series.rows[2].1, 20);
        assert_eq!(series.rows[2].2, 0);
    }

    #[test]
    fn multicodec_shares_sum_to_one_and_exclude_cancels() {
        let mut ds = MonitoringDataset::new(vec!["us".into()]);
        for i in 0..86 {
            ds.entries[0].push(entry_at(
                i,
                i,
                RequestType::WantHave,
                Multicodec::DagProtobuf,
                Country::Us,
            ));
        }
        for i in 0..13 {
            ds.entries[0].push(entry_at(
                i,
                100 + i,
                RequestType::WantHave,
                Multicodec::Raw,
                Country::Us,
            ));
        }
        ds.entries[0].push(entry_at(
            1,
            999,
            RequestType::WantHave,
            Multicodec::DagCbor,
            Country::Us,
        ));
        ds.entries[0].push(entry_at(
            2,
            999,
            RequestType::Cancel,
            Multicodec::EthereumTx,
            Country::Us,
        ));
        let rows = multicodec_shares(&ds);
        let total_share: f64 = rows.iter().map(|(_, _, s)| s).sum();
        assert!((total_share - 1.0).abs() < 1e-9);
        assert_eq!(rows[0].0, Multicodec::DagProtobuf);
        assert_eq!(rows[0].1, 86);
        assert!(rows.iter().all(|(c, _, _)| *c != Multicodec::EthereumTx));
    }

    #[test]
    fn country_shares_respect_window_and_flags() {
        let mut entries = vec![
            entry_at(10, 1, RequestType::WantHave, Multicodec::Raw, Country::Us),
            entry_at(20, 2, RequestType::WantHave, Multicodec::Raw, Country::De),
            entry_at(
                5_000,
                3,
                RequestType::WantHave,
                Multicodec::Raw,
                Country::Fr,
            ), // outside window
        ];
        let mut dup = entry_at(11, 4, RequestType::WantHave, Multicodec::Raw, Country::Us);
        dup.flags.inter_monitor_duplicate = true;
        entries.push(dup);
        let trace = UnifiedTrace { entries };
        let rows = country_shares(&trace, SimTime::ZERO, SimTime::from_secs(100));
        assert_eq!(rows.len(), 2);
        let us = rows.iter().find(|(c, _, _)| *c == Country::Us).unwrap();
        assert_eq!(us.1, 1);
        assert!((us.2 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn origin_groups_are_split_correctly() {
        let gateway_peer = PeerId::derived(9, 1);
        let dominant_peer = PeerId::derived(9, 2);
        let user_peer = PeerId::derived(9, 3);
        let entries = vec![
            entry_at(10, 1, RequestType::WantHave, Multicodec::Raw, Country::Us),
            entry_at(20, 2, RequestType::WantHave, Multicodec::Raw, Country::Us),
            entry_at(30, 3, RequestType::WantHave, Multicodec::Raw, Country::Us),
            entry_at(
                3_700,
                3,
                RequestType::WantHave,
                Multicodec::DagProtobuf,
                Country::Us,
            ),
        ];
        let trace = UnifiedTrace { entries };
        let gateways: HashSet<PeerId> = [gateway_peer, dominant_peer].into_iter().collect();
        let dominant: HashSet<PeerId> = [dominant_peer].into_iter().collect();
        let rates = origin_group_rates(&trace, &gateways, &dominant, SimDuration::from_hours(1));
        assert_eq!(rates.totals, (2, 1, 2));
        assert_eq!(rates.rows.len(), 2);
        let _ = user_peer;
        // First hour: 2 gateway + 1 non-gateway requests.
        assert!((rates.rows[0].1 - 2.0 / 3600.0).abs() < 1e-12);
        assert!((rates.rows[0].3 - 1.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn per_peer_counts_are_sorted_descending() {
        let mut entries = Vec::new();
        for _ in 0..5 {
            entries.push(entry_at(
                1,
                1,
                RequestType::WantHave,
                Multicodec::Raw,
                Country::Us,
            ));
        }
        entries.push(entry_at(
            2,
            2,
            RequestType::WantHave,
            Multicodec::Raw,
            Country::Us,
        ));
        let trace = UnifiedTrace { entries };
        let counts = per_peer_request_counts(&trace);
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0].1, 5);
        assert_eq!(counts[1].1, 1);
    }

    #[test]
    fn empty_dataset_yields_empty_tables() {
        let ds = MonitoringDataset::new(vec!["us".into()]);
        assert!(multicodec_shares(&ds).is_empty());
        let trace = UnifiedTrace::default();
        assert!(country_shares(&trace, SimTime::ZERO, SimTime::from_secs(1)).is_empty());
        assert!(per_peer_request_counts(&trace).is_empty());
    }
}
