//! Trace preprocessing (Sec. IV-B).
//!
//! Raw per-monitor traces are unified into one stream and two kinds of
//! repeated entries are flagged:
//!
//! * **Inter-monitor duplicates** — a node connected to several monitors
//!   broadcasts each want to all of them; entries with the same
//!   `(peer, request type, CID)` arriving at *different* monitors within a
//!   5 s window are genuine duplicates of one broadcast.
//! * **Re-broadcasts** — IPFS re-broadcasts unresolved wants every 30 s; a
//!   per-monitor window of 31 s flags these repeats.
//!
//! As in the paper, the flags are kept (rather than entries being dropped) so
//! that each analysis can decide which view it needs; the standard analyses
//! filter both out via [`crate::trace::UnifiedTrace::primary_entries`].

use crate::trace::{MonitoringDataset, TraceEntry, UnifiedTrace};
use ipfs_mon_bitswap::RequestType;
use ipfs_mon_simnet::time::{SimDuration, SimTime};
use ipfs_mon_types::{Cid, PeerId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Preprocessing configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Window within which the same entry at *different* monitors counts as a
    /// duplicate of one broadcast (paper: 5 s).
    pub duplicate_window: SimDuration,
    /// Window within which the same entry at the *same* monitor counts as a
    /// periodic re-broadcast (paper: 31 s).
    pub rebroadcast_window: SimDuration,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self {
            duplicate_window: SimDuration::from_secs(5),
            rebroadcast_window: SimDuration::from_secs(31),
        }
    }
}

/// Statistics of one preprocessing pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreprocessStats {
    /// Total entries in the unified trace.
    pub total: usize,
    /// Entries flagged as inter-monitor duplicates.
    pub inter_monitor_duplicates: usize,
    /// Entries flagged as re-broadcasts.
    pub rebroadcasts: usize,
    /// Entries carrying neither flag.
    pub primary: usize,
}

impl PreprocessStats {
    /// Fraction of entries that are repeats of some kind.
    pub fn repeat_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.total - self.primary) as f64 / self.total as f64
        }
    }
}

/// Key identifying "the same logical entry" for both windows.
type EntryKey = (PeerId, RequestType, Cid);

/// Unifies the per-monitor traces of `dataset` into one time-ordered trace
/// and sets the duplicate/re-broadcast flags.
pub fn unify_and_flag(
    dataset: &MonitoringDataset,
    config: PreprocessConfig,
) -> (UnifiedTrace, PreprocessStats) {
    // Merge and sort by timestamp (stable tie-break by monitor index keeps the
    // result deterministic).
    let mut entries: Vec<TraceEntry> = dataset.entries.iter().flatten().cloned().collect();
    entries.sort_by_key(|e| (e.timestamp, e.monitor));

    // For the duplicate window we remember, per key, the last time each
    // monitor saw the entry. An entry is an inter-monitor duplicate if any
    // *other* monitor saw the same key within the window before it.
    let mut last_seen: HashMap<EntryKey, Vec<Option<SimTime>>> = HashMap::new();
    let monitors = dataset.monitor_count().max(1);

    let mut stats = PreprocessStats::default();
    for entry in entries.iter_mut() {
        let key: EntryKey = (entry.peer, entry.request_type, entry.cid.clone());
        let per_monitor = last_seen
            .entry(key)
            .or_insert_with(|| vec![None; monitors]);

        // Inter-monitor duplicate: some other monitor saw it recently.
        let is_duplicate = per_monitor.iter().enumerate().any(|(m, seen)| {
            m != entry.monitor
                && seen
                    .map(|t| entry.timestamp.since(t) <= config.duplicate_window)
                    .unwrap_or(false)
        });
        // Re-broadcast: the same monitor saw it within the larger window.
        let is_rebroadcast = per_monitor[entry.monitor]
            .map(|t| entry.timestamp.since(t) <= config.rebroadcast_window)
            .unwrap_or(false);

        entry.flags.inter_monitor_duplicate = is_duplicate;
        entry.flags.rebroadcast = is_rebroadcast;
        per_monitor[entry.monitor] = Some(entry.timestamp);

        stats.total += 1;
        if is_duplicate {
            stats.inter_monitor_duplicates += 1;
        }
        if is_rebroadcast {
            stats.rebroadcasts += 1;
        }
        if !is_duplicate && !is_rebroadcast {
            stats.primary += 1;
        }
    }

    (UnifiedTrace { entries }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EntryFlags;
    use ipfs_mon_types::{Country, Multiaddr, Multicodec, Transport};

    fn entry(millis: u64, peer: u64, cid: u8, monitor: usize, rtype: RequestType) -> TraceEntry {
        TraceEntry {
            timestamp: SimTime::from_millis(millis),
            peer: PeerId::derived(3, peer),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::De),
            request_type: rtype,
            cid: Cid::new_v1(Multicodec::Raw, &[cid]),
            monitor,
            flags: EntryFlags::default(),
        }
    }

    fn dataset(entries: Vec<TraceEntry>) -> MonitoringDataset {
        let mut ds = MonitoringDataset::new(vec!["us".into(), "de".into()]);
        for e in entries {
            let m = e.monitor;
            ds.entries[m].push(e);
        }
        ds
    }

    #[test]
    fn cross_monitor_copy_within_window_is_duplicate() {
        let ds = dataset(vec![
            entry(1_000, 1, 1, 0, RequestType::WantHave),
            entry(2_500, 1, 1, 1, RequestType::WantHave), // 1.5 s later, other monitor
        ]);
        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());
        assert!(!trace.entries[0].flags.inter_monitor_duplicate);
        assert!(trace.entries[1].flags.inter_monitor_duplicate);
        assert!(!trace.entries[1].flags.rebroadcast);
        assert_eq!(stats.inter_monitor_duplicates, 1);
        assert_eq!(stats.primary, 1);
    }

    #[test]
    fn cross_monitor_copy_outside_window_is_not_duplicate() {
        let ds = dataset(vec![
            entry(1_000, 1, 1, 0, RequestType::WantHave),
            entry(7_500, 1, 1, 1, RequestType::WantHave), // 6.5 s later
        ]);
        let (trace, _) = unify_and_flag(&ds, PreprocessConfig::default());
        assert!(!trace.entries[1].flags.inter_monitor_duplicate);
    }

    #[test]
    fn same_monitor_repeat_within_31s_is_rebroadcast() {
        let ds = dataset(vec![
            entry(0, 1, 1, 0, RequestType::WantHave),
            entry(30_000, 1, 1, 0, RequestType::WantHave),
            entry(60_000, 1, 1, 0, RequestType::WantHave),
            entry(120_000, 1, 1, 0, RequestType::WantHave), // 60 s gap → not flagged
        ]);
        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());
        assert!(!trace.entries[0].flags.rebroadcast);
        assert!(trace.entries[1].flags.rebroadcast);
        assert!(trace.entries[2].flags.rebroadcast);
        assert!(!trace.entries[3].flags.rebroadcast);
        assert_eq!(stats.rebroadcasts, 2);
    }

    #[test]
    fn different_cids_or_types_are_never_repeats() {
        let ds = dataset(vec![
            entry(0, 1, 1, 0, RequestType::WantHave),
            entry(100, 1, 2, 0, RequestType::WantHave),        // other CID
            entry(200, 1, 1, 0, RequestType::Cancel),          // other type
            entry(300, 2, 1, 0, RequestType::WantHave),        // other peer
        ]);
        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());
        assert!(trace.entries.iter().all(|e| e.flags.is_primary()));
        assert_eq!(stats.primary, 4);
    }

    #[test]
    fn repeated_rebroadcasts_across_monitors_flag_both_ways() {
        // A node connected to both monitors re-broadcasting every 30 s: the
        // paper notes the >50 % repeat share; check the unified trace ends up
        // with exactly one primary entry.
        let mut raw = Vec::new();
        for i in 0..10u64 {
            raw.push(entry(i * 30_000, 1, 1, 0, RequestType::WantHave));
            raw.push(entry(i * 30_000 + 120, 1, 1, 1, RequestType::WantHave));
        }
        let ds = dataset(raw);
        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());
        assert_eq!(stats.total, 20);
        assert_eq!(stats.primary, 1);
        assert!(stats.repeat_fraction() > 0.9);
        assert_eq!(trace.primary_entries().count(), 1);
    }

    #[test]
    fn unified_trace_is_time_ordered() {
        let ds = dataset(vec![
            entry(5_000, 1, 1, 1, RequestType::WantHave),
            entry(1_000, 2, 2, 0, RequestType::WantHave),
            entry(3_000, 3, 3, 0, RequestType::WantBlock),
        ]);
        let (trace, _) = unify_and_flag(&ds, PreprocessConfig::default());
        for pair in trace.entries.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp);
        }
    }

    #[test]
    fn empty_dataset_produces_empty_trace() {
        let ds = MonitoringDataset::new(vec!["us".into()]);
        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());
        assert!(trace.is_empty());
        assert_eq!(stats, PreprocessStats::default());
        assert_eq!(stats.repeat_fraction(), 0.0);
    }

    #[test]
    fn window_sizes_are_configurable() {
        let ds = dataset(vec![
            entry(0, 1, 1, 0, RequestType::WantHave),
            entry(8_000, 1, 1, 1, RequestType::WantHave),
        ]);
        let strict = PreprocessConfig {
            duplicate_window: SimDuration::from_secs(5),
            rebroadcast_window: SimDuration::from_secs(31),
        };
        let relaxed = PreprocessConfig {
            duplicate_window: SimDuration::from_secs(10),
            rebroadcast_window: SimDuration::from_secs(31),
        };
        let (_, s1) = unify_and_flag(&ds, strict);
        let (_, s2) = unify_and_flag(&ds, relaxed);
        assert_eq!(s1.inter_monitor_duplicates, 0);
        assert_eq!(s2.inter_monitor_duplicates, 1);
    }
}
