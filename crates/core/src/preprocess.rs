//! Trace preprocessing (Sec. IV-B).
//!
//! Raw per-monitor traces are unified into one stream and two kinds of
//! repeated entries are flagged:
//!
//! * **Inter-monitor duplicates** — a node connected to several monitors
//!   broadcasts each want to all of them; entries with the same
//!   `(peer, request type, CID)` arriving at *different* monitors within a
//!   5 s window are genuine duplicates of one broadcast.
//! * **Re-broadcasts** — IPFS re-broadcasts unresolved wants every 30 s; a
//!   per-monitor window of 31 s flags these repeats.
//!
//! As in the paper, the flags are kept (rather than entries being dropped) so
//! that each analysis can decide which view it needs; the standard analyses
//! filter both out via [`crate::trace::UnifiedTrace::primary_entries`].
//!
//! All execution modes share one engine, [`StreamingPreprocessor`], driven
//! through the [`TraceSource`] abstraction:
//!
//! * [`flag_source`] / [`unify_and_flag_source`] — flag the merged stream of
//!   *any* trace source (in-memory dataset, single segment, multi-segment
//!   manifest) without materializing the trace, in memory bounded by the
//!   number of *active* `(peer, request type, CID)` keys inside the dedup
//!   windows (stale keys are evicted as time advances). Storage-level
//!   choices — chunk payload codec, file vs mmap segment source, serial vs
//!   decode-ahead merging (`ipfs_mon_tracestore::ReadOptions`) — are wholly
//!   below this interface: every combination delivers the same merged
//!   stream, so flags (and every analysis downstream of them) are
//!   bit-identical across all of them;
//! * [`unify_and_flag`] — the historical in-memory entry point, now a thin
//!   wrapper over the streaming engine fed from the dataset source;
//! * [`unify_and_flag_stream`] / [`flag_segment`] — lower-level variants for
//!   callers that already hold a merged stream or a single segment reader.
//!
//! Every path produces bit-identical flags because it is the same code.

use crate::trace::{MonitoringDataset, TraceEntry, UnifiedTrace};
use ipfs_mon_bitswap::RequestType;
use ipfs_mon_simnet::time::{SimDuration, SimTime};
use ipfs_mon_tracestore::reader::{ChunkSource, MergedEntryStream, TraceReader};
use ipfs_mon_tracestore::{SegmentError, SourceEntries, TraceSource};
use ipfs_mon_types::{Cid, PeerId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Preprocessing configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Window within which the same entry at *different* monitors counts as a
    /// duplicate of one broadcast (paper: 5 s).
    pub duplicate_window: SimDuration,
    /// Window within which the same entry at the *same* monitor counts as a
    /// periodic re-broadcast (paper: 31 s).
    pub rebroadcast_window: SimDuration,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self {
            duplicate_window: SimDuration::from_secs(5),
            rebroadcast_window: SimDuration::from_secs(31),
        }
    }
}

/// Statistics of one preprocessing pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreprocessStats {
    /// Total entries in the unified trace.
    pub total: usize,
    /// Entries flagged as inter-monitor duplicates.
    pub inter_monitor_duplicates: usize,
    /// Entries flagged as re-broadcasts.
    pub rebroadcasts: usize,
    /// Entries carrying neither flag.
    pub primary: usize,
}

impl PreprocessStats {
    /// Fraction of entries that are repeats of some kind.
    pub fn repeat_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.total - self.primary) as f64 / self.total as f64
        }
    }
}

/// Key identifying "the same logical entry" for both windows.
type EntryKey = (PeerId, RequestType, Cid);

/// Entries processed between evictions of stale window state.
const EVICTION_PERIOD: usize = 8192;

/// The window-flagging engine shared by the in-memory and streaming paths.
///
/// Feed entries in `(timestamp, monitor)` order via
/// [`StreamingPreprocessor::flag`]. State is one last-seen timestamp per
/// monitor per active key; keys whose last activity has fallen outside the
/// larger window are evicted periodically, so memory tracks the *rate* of
/// distinct keys, not the length of the trace.
#[derive(Debug, Clone)]
pub struct StreamingPreprocessor {
    config: PreprocessConfig,
    monitors: usize,
    last_seen: HashMap<EntryKey, Vec<Option<SimTime>>>,
    stats: PreprocessStats,
    since_eviction: usize,
}

impl StreamingPreprocessor {
    /// Creates an engine for traces of `monitors` monitors.
    pub fn new(monitors: usize, config: PreprocessConfig) -> Self {
        Self {
            config,
            monitors: monitors.max(1),
            last_seen: HashMap::new(),
            stats: PreprocessStats::default(),
            since_eviction: 0,
        }
    }

    /// Sets the duplicate/re-broadcast flags of `entry` and updates the
    /// window state. Entries must arrive in `(timestamp, monitor)` order.
    pub fn flag(&mut self, entry: &mut TraceEntry) {
        let key: EntryKey = (entry.peer, entry.request_type, entry.cid.clone());
        let per_monitor = self
            .last_seen
            .entry(key)
            .or_insert_with(|| vec![None; self.monitors]);

        // Inter-monitor duplicate: some other monitor saw it recently.
        let is_duplicate = per_monitor.iter().enumerate().any(|(m, seen)| {
            m != entry.monitor
                && seen
                    .map(|t| entry.timestamp.since(t) <= self.config.duplicate_window)
                    .unwrap_or(false)
        });
        // Re-broadcast: the same monitor saw it within the larger window.
        let is_rebroadcast = per_monitor[entry.monitor]
            .map(|t| entry.timestamp.since(t) <= self.config.rebroadcast_window)
            .unwrap_or(false);

        entry.flags.inter_monitor_duplicate = is_duplicate;
        entry.flags.rebroadcast = is_rebroadcast;
        per_monitor[entry.monitor] = Some(entry.timestamp);

        self.stats.total += 1;
        if is_duplicate {
            self.stats.inter_monitor_duplicates += 1;
        }
        if is_rebroadcast {
            self.stats.rebroadcasts += 1;
        }
        if !is_duplicate && !is_rebroadcast {
            self.stats.primary += 1;
        }

        self.since_eviction += 1;
        if self.since_eviction >= EVICTION_PERIOD {
            self.evict_stale(entry.timestamp);
            self.since_eviction = 0;
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> PreprocessStats {
        self.stats
    }

    /// Number of keys currently tracked (exposed for memory diagnostics).
    pub fn tracked_keys(&self) -> usize {
        self.last_seen.len()
    }

    /// Drops keys that can no longer influence any future entry: input is
    /// time-ordered, so a key whose every last-seen timestamp lies further
    /// than the larger window before `now` is dead state.
    fn evict_stale(&mut self, now: SimTime) {
        let horizon = self
            .config
            .duplicate_window
            .as_millis()
            .max(self.config.rebroadcast_window.as_millis());
        self.last_seen.retain(|_, per_monitor| {
            per_monitor
                .iter()
                .flatten()
                .any(|&t| now.since(t).as_millis() <= horizon)
        });
    }
}

/// Unifies the per-monitor traces of `dataset` into one time-ordered trace
/// and sets the duplicate/re-broadcast flags. Thin wrapper over the
/// streaming engine: the dataset's [`TraceSource`] merged stream is the
/// time-ordered view the flagging windows expect.
pub fn unify_and_flag(
    dataset: &MonitoringDataset,
    config: PreprocessConfig,
) -> (UnifiedTrace, PreprocessStats) {
    unify_and_flag_source(dataset, config).expect("in-memory sources cannot fail")
}

/// Lazily flags a time-ordered entry stream. See [`unify_and_flag_stream`].
pub struct FlaggedStream<I> {
    inner: I,
    preprocessor: StreamingPreprocessor,
}

impl<I> FlaggedStream<I> {
    /// Statistics over the entries yielded so far (complete once the stream
    /// is exhausted).
    pub fn stats(&self) -> PreprocessStats {
        self.preprocessor.stats()
    }

    /// Number of window keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.preprocessor.tracked_keys()
    }
}

impl<'a, S: ChunkSource> FlaggedStream<MergedEntryStream<'a, S>> {
    /// Takes the segment read error that ended the stream early, if any.
    ///
    /// A segment-backed stream ends silently when a chunk fails its CRC or
    /// decode; check this after exhausting a [`flag_segment`] stream, or the
    /// statistics cover a truncated trace with no indication anything is
    /// wrong. ([`unify_and_flag_segment`] does this for you.)
    pub fn take_error(&mut self) -> Option<SegmentError> {
        self.inner.take_error()
    }
}

impl<I: Iterator<Item = TraceEntry>> Iterator for FlaggedStream<I> {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        let mut entry = self.inner.next()?;
        self.preprocessor.flag(&mut entry);
        Some(entry)
    }
}

/// Streaming counterpart of [`unify_and_flag`]: wraps a `(timestamp,
/// monitor)`-ordered entry stream (e.g.
/// [`TraceReader::stream_merged`]) and yields the same entries with flags
/// set, without materializing the trace.
pub fn unify_and_flag_stream<I: Iterator<Item = TraceEntry>>(
    merged: I,
    monitors: usize,
    config: PreprocessConfig,
) -> FlaggedStream<I> {
    FlaggedStream {
        inner: merged,
        preprocessor: StreamingPreprocessor::new(monitors, config),
    }
}

/// Opens a flagged stream over everything stored in a tracestore segment.
pub fn flag_segment<'a, S: ChunkSource>(
    reader: &'a TraceReader<S>,
    config: PreprocessConfig,
) -> FlaggedStream<MergedEntryStream<'a, S>> {
    unify_and_flag_stream(reader.stream_merged(), reader.monitor_count(), config)
}

impl FlaggedStream<SourceEntries<'_>> {
    /// Takes the storage error that ended a source-backed stream early, if
    /// any. See [`FlaggedStream::take_error`] on the segment variant for why
    /// checking matters. ([`unify_and_flag_source`] does this for you.)
    pub fn take_source_error(&mut self) -> Option<SegmentError> {
        self.inner.take_error()
    }
}

/// Opens a flagged stream over any [`TraceSource`] — the universal
/// preprocessing entry point: the same call handles an in-memory dataset, a
/// single segment, or a multi-segment manifest.
pub fn flag_source<T: TraceSource>(
    source: &T,
    config: PreprocessConfig,
) -> FlaggedStream<SourceEntries<'_>> {
    unify_and_flag_stream(source.merged_entries(), source.monitor_count(), config)
}

/// Streams any [`TraceSource`] through preprocessing into an in-memory
/// [`UnifiedTrace`]. For analyses that can consume the stream directly,
/// prefer [`flag_source`] — it never materializes the trace.
pub fn unify_and_flag_source<T: TraceSource>(
    source: &T,
    config: PreprocessConfig,
) -> Result<(UnifiedTrace, PreprocessStats), SegmentError> {
    let mut stream = flag_source(source, config);
    let entries: Vec<TraceEntry> = (&mut stream).collect();
    let stats = stream.stats();
    if let Some(error) = stream.take_source_error() {
        return Err(error);
    }
    Ok((UnifiedTrace { entries }, stats))
}

/// Convenience: streams a segment through preprocessing into an in-memory
/// [`UnifiedTrace`] — the segment-backed equivalent of [`unify_and_flag`].
pub fn unify_and_flag_segment<S: ChunkSource>(
    reader: &TraceReader<S>,
    config: PreprocessConfig,
) -> Result<(UnifiedTrace, PreprocessStats), SegmentError> {
    let mut stream = flag_segment(reader, config);
    let entries: Vec<TraceEntry> = (&mut stream).collect();
    let stats = stream.stats();
    if let Some(error) = stream.take_error() {
        return Err(error);
    }
    Ok((UnifiedTrace { entries }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EntryFlags;
    use ipfs_mon_tracestore::{SegmentConfig, SliceSource};
    use ipfs_mon_types::{Country, Multiaddr, Multicodec, Transport};

    fn entry(millis: u64, peer: u64, cid: u8, monitor: usize, rtype: RequestType) -> TraceEntry {
        TraceEntry {
            timestamp: SimTime::from_millis(millis),
            peer: PeerId::derived(3, peer),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::De),
            request_type: rtype,
            cid: Cid::new_v1(Multicodec::Raw, &[cid]),
            monitor,
            flags: EntryFlags::default(),
        }
    }

    fn dataset(entries: Vec<TraceEntry>) -> MonitoringDataset {
        let mut ds = MonitoringDataset::new(vec!["us".into(), "de".into()]);
        for e in entries {
            let m = e.monitor;
            ds.entries[m].push(e);
        }
        ds
    }

    #[test]
    fn cross_monitor_copy_within_window_is_duplicate() {
        let ds = dataset(vec![
            entry(1_000, 1, 1, 0, RequestType::WantHave),
            entry(2_500, 1, 1, 1, RequestType::WantHave), // 1.5 s later, other monitor
        ]);
        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());
        assert!(!trace.entries[0].flags.inter_monitor_duplicate);
        assert!(trace.entries[1].flags.inter_monitor_duplicate);
        assert!(!trace.entries[1].flags.rebroadcast);
        assert_eq!(stats.inter_monitor_duplicates, 1);
        assert_eq!(stats.primary, 1);
    }

    #[test]
    fn cross_monitor_copy_outside_window_is_not_duplicate() {
        let ds = dataset(vec![
            entry(1_000, 1, 1, 0, RequestType::WantHave),
            entry(7_500, 1, 1, 1, RequestType::WantHave), // 6.5 s later
        ]);
        let (trace, _) = unify_and_flag(&ds, PreprocessConfig::default());
        assert!(!trace.entries[1].flags.inter_monitor_duplicate);
    }

    #[test]
    fn same_monitor_repeat_within_31s_is_rebroadcast() {
        let ds = dataset(vec![
            entry(0, 1, 1, 0, RequestType::WantHave),
            entry(30_000, 1, 1, 0, RequestType::WantHave),
            entry(60_000, 1, 1, 0, RequestType::WantHave),
            entry(120_000, 1, 1, 0, RequestType::WantHave), // 60 s gap → not flagged
        ]);
        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());
        assert!(!trace.entries[0].flags.rebroadcast);
        assert!(trace.entries[1].flags.rebroadcast);
        assert!(trace.entries[2].flags.rebroadcast);
        assert!(!trace.entries[3].flags.rebroadcast);
        assert_eq!(stats.rebroadcasts, 2);
    }

    #[test]
    fn different_cids_or_types_are_never_repeats() {
        let ds = dataset(vec![
            entry(0, 1, 1, 0, RequestType::WantHave),
            entry(100, 1, 2, 0, RequestType::WantHave), // other CID
            entry(200, 1, 1, 0, RequestType::Cancel),   // other type
            entry(300, 2, 1, 0, RequestType::WantHave), // other peer
        ]);
        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());
        assert!(trace.entries.iter().all(|e| e.flags.is_primary()));
        assert_eq!(stats.primary, 4);
    }

    #[test]
    fn repeated_rebroadcasts_across_monitors_flag_both_ways() {
        // A node connected to both monitors re-broadcasting every 30 s: the
        // paper notes the >50 % repeat share; check the unified trace ends up
        // with exactly one primary entry.
        let mut raw = Vec::new();
        for i in 0..10u64 {
            raw.push(entry(i * 30_000, 1, 1, 0, RequestType::WantHave));
            raw.push(entry(i * 30_000 + 120, 1, 1, 1, RequestType::WantHave));
        }
        let ds = dataset(raw);
        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());
        assert_eq!(stats.total, 20);
        assert_eq!(stats.primary, 1);
        assert!(stats.repeat_fraction() > 0.9);
        assert_eq!(trace.primary_entries().count(), 1);
    }

    #[test]
    fn unified_trace_is_time_ordered() {
        let ds = dataset(vec![
            entry(5_000, 1, 1, 1, RequestType::WantHave),
            entry(1_000, 2, 2, 0, RequestType::WantHave),
            entry(3_000, 3, 3, 0, RequestType::WantBlock),
        ]);
        let (trace, _) = unify_and_flag(&ds, PreprocessConfig::default());
        for pair in trace.entries.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp);
        }
    }

    #[test]
    fn empty_dataset_produces_empty_trace() {
        let ds = MonitoringDataset::new(vec!["us".into()]);
        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());
        assert!(trace.is_empty());
        assert_eq!(stats, PreprocessStats::default());
        assert_eq!(stats.repeat_fraction(), 0.0);
    }

    #[test]
    fn window_sizes_are_configurable() {
        let ds = dataset(vec![
            entry(0, 1, 1, 0, RequestType::WantHave),
            entry(8_000, 1, 1, 1, RequestType::WantHave),
        ]);
        let strict = PreprocessConfig {
            duplicate_window: SimDuration::from_secs(5),
            rebroadcast_window: SimDuration::from_secs(31),
        };
        let relaxed = PreprocessConfig {
            duplicate_window: SimDuration::from_secs(10),
            rebroadcast_window: SimDuration::from_secs(31),
        };
        let (_, s1) = unify_and_flag(&ds, strict);
        let (_, s2) = unify_and_flag(&ds, relaxed);
        assert_eq!(s1.inter_monitor_duplicates, 0);
        assert_eq!(s2.inter_monitor_duplicates, 1);
    }

    #[test]
    fn streaming_over_segment_matches_in_memory_path() {
        // Interleaved duplicates, re-broadcasts and noise across two
        // monitors, then: flags from the streaming path over a segment must
        // equal flags from unify_and_flag exactly.
        let mut raw = Vec::new();
        for i in 0..200u64 {
            let peer = i % 11;
            let cid = (i % 7) as u8;
            raw.push(entry(i * 700, peer, cid, 0, RequestType::WantHave));
            if i % 3 == 0 {
                raw.push(entry(i * 700 + 900, peer, cid, 1, RequestType::WantHave));
            }
            if i % 5 == 0 {
                raw.push(entry(i * 700 + 30_000, peer, cid, 0, RequestType::WantHave));
            }
        }
        // Per-monitor arrival order (the streaming path's precondition).
        let mut ds = dataset(Vec::new());
        let mut sorted = raw.clone();
        sorted.sort_by_key(|e| (e.timestamp, e.monitor));
        for e in &sorted {
            ds.entries[e.monitor].push(e.clone());
        }

        let (trace, stats) = unify_and_flag(&ds, PreprocessConfig::default());

        let bytes = ds
            .to_segment_bytes(SegmentConfig {
                chunk_capacity: 16,
                ..SegmentConfig::default()
            })
            .unwrap();
        let reader = ipfs_mon_tracestore::TraceReader::new(SliceSource::new(&bytes)).unwrap();
        let (streamed_trace, streamed_stats) =
            unify_and_flag_segment(&reader, PreprocessConfig::default()).unwrap();

        assert_eq!(streamed_trace.entries, trace.entries);
        assert_eq!(streamed_stats, stats);
    }

    #[test]
    fn eviction_keeps_state_bounded_without_changing_flags() {
        // Far more distinct keys than the eviction period, spread over a long
        // time span: tracked state must stay close to the active-window
        // population instead of the total key count.
        let config = PreprocessConfig::default();
        let mut preprocessor = StreamingPreprocessor::new(1, config);
        let total_keys = 3 * EVICTION_PERIOD as u64;
        for i in 0..total_keys {
            let mut e = entry(i * 1_000, i, (i % 251) as u8, 0, RequestType::WantHave);
            preprocessor.flag(&mut e);
            assert!(e.flags.is_primary());
        }
        assert!(
            preprocessor.tracked_keys() < EVICTION_PERIOD + 64,
            "tracked {} keys",
            preprocessor.tracked_keys()
        );
        // A repeat inside the window is still caught after evictions.
        let last = total_keys - 1;
        let mut repeat = entry(
            (last * 1_000) + 20_000,
            last,
            (last % 251) as u8,
            0,
            RequestType::WantHave,
        );
        preprocessor.flag(&mut repeat);
        assert!(repeat.flags.rebroadcast);
    }
}
