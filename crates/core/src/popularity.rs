//! Content-popularity analysis (Sec. IV-D / V-E).
//!
//! Two scores are computed per CID over a given period:
//!
//! * **Raw request popularity (RRP)** — the total number of requests observed
//!   for the CID ("on the wire" behaviour, relevant for cache simulations and
//!   Bitswap tuning);
//! * **Unique request popularity (URP)** — the number of distinct peers that
//!   requested the CID (a proxy for popularity among distinct users).
//!
//! Both are computed on the unified, deduplicated trace. The paper finds both
//! distributions heavily skewed yet rejects the power-law hypothesis with the
//! Clauset–Shalizi–Newman test; [`popularity_report`] reproduces exactly that
//! pipeline.

use crate::trace::UnifiedTrace;
use ipfs_mon_analysis::{goodness_of_fit, Ecdf, GoodnessOfFit};
use ipfs_mon_types::{Cid, PeerId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Popularity scores for every CID observed in a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PopularityScores {
    /// Raw request popularity per CID.
    pub rrp: HashMap<Cid, u64>,
    /// Unique request popularity per CID.
    pub urp: HashMap<Cid, u64>,
}

impl PopularityScores {
    /// Number of distinct CIDs observed.
    pub fn cid_count(&self) -> usize {
        self.rrp.len()
    }

    /// The `k` most popular CIDs by the given score (`true` = URP).
    pub fn top_k(&self, k: usize, by_urp: bool) -> Vec<(Cid, u64)> {
        let map = if by_urp { &self.urp } else { &self.rrp };
        let mut entries: Vec<(Cid, u64)> = map.iter().map(|(c, &v)| (c.clone(), v)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// ECDF of the RRP scores.
    pub fn rrp_ecdf(&self) -> Ecdf {
        Ecdf::from_counts(self.rrp.values().copied())
    }

    /// ECDF of the URP scores.
    pub fn urp_ecdf(&self) -> Ecdf {
        Ecdf::from_counts(self.urp.values().copied())
    }

    /// Fraction of CIDs requested by exactly one distinct peer (the paper
    /// reports > 80 %).
    pub fn single_requester_fraction(&self) -> f64 {
        if self.urp.is_empty() {
            return 0.0;
        }
        let singles = self.urp.values().filter(|&&v| v == 1).count();
        singles as f64 / self.urp.len() as f64
    }
}

/// Incremental per-CID score aggregation shared by the in-memory and
/// streaming entry points and by [`crate::sinks::PopularitySink`].
#[derive(Debug, Clone, Default)]
pub(crate) struct ScoreAccumulator {
    rrp: HashMap<Cid, u64>,
    requesters: HashMap<Cid, HashSet<PeerId>>,
}

impl ScoreAccumulator {
    pub(crate) fn add(&mut self, cid: &Cid, peer: PeerId) {
        *self.rrp.entry(cid.clone()).or_insert(0) += 1;
        self.requesters.entry(cid.clone()).or_default().insert(peer);
    }

    /// Merges another accumulator: request counts add, requester sets union —
    /// both independent of how the entries were partitioned, which is what
    /// makes the popularity scores safe to compute per monitor and combine.
    pub(crate) fn merge(&mut self, other: Self) {
        for (cid, count) in other.rrp {
            *self.rrp.entry(cid).or_insert(0) += count;
        }
        for (cid, peers) in other.requesters {
            self.requesters.entry(cid).or_default().extend(peers);
        }
    }

    pub(crate) fn finish(self) -> PopularityScores {
        let urp = self
            .requesters
            .into_iter()
            .map(|(cid, peers)| (cid, peers.len() as u64))
            .collect();
        PopularityScores { rrp: self.rrp, urp }
    }
}

/// Computes RRP and URP from the primary (deduplicated, re-broadcast-free)
/// requests of a unified trace.
pub fn popularity_scores(trace: &UnifiedTrace) -> PopularityScores {
    let mut accumulator = ScoreAccumulator::default();
    for entry in trace.primary_requests() {
        accumulator.add(&entry.cid, entry.peer);
    }
    accumulator.finish()
}

/// Streaming counterpart of [`popularity_scores`]: consumes any entry stream
/// — typically [`crate::preprocess::flag_segment`] over a tracestore segment
/// — holding only the per-CID aggregates in memory, never the trace itself.
/// Non-primary and cancel entries are filtered out, matching the in-memory
/// path.
pub fn popularity_scores_stream<I: IntoIterator<Item = crate::trace::TraceEntry>>(
    entries: I,
) -> PopularityScores {
    use ipfs_mon_tracestore::AnalysisSink;
    let mut sink = crate::sinks::PopularitySink::new();
    for entry in entries {
        sink.consume(entry);
    }
    sink.finish()
}

/// Full popularity analysis: scores, ECDF curves and power-law tests for both
/// metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopularityReport {
    /// Number of distinct CIDs.
    pub cid_count: usize,
    /// ECDF curve of RRP, as `(score, cumulative probability)` points.
    pub rrp_curve: Vec<(f64, f64)>,
    /// ECDF curve of URP.
    pub urp_curve: Vec<(f64, f64)>,
    /// Fraction of CIDs with a single distinct requester.
    pub single_requester_fraction: f64,
    /// Power-law goodness-of-fit result for RRP (`None` if too few samples).
    pub rrp_power_law: Option<GoodnessOfFit>,
    /// Power-law goodness-of-fit result for URP.
    pub urp_power_law: Option<GoodnessOfFit>,
}

/// Runs the complete Fig. 5 analysis on a unified trace. `bootstrap` controls
/// the number of goodness-of-fit replicates (the paper's threshold `p < 0.1`
/// is applied).
pub fn popularity_report(trace: &UnifiedTrace, bootstrap: usize, seed: u64) -> PopularityReport {
    let scores = popularity_scores(trace);
    let rrp_samples: Vec<f64> = scores.rrp.values().map(|&v| v as f64).collect();
    let urp_samples: Vec<f64> = scores.urp.values().map(|&v| v as f64).collect();
    PopularityReport {
        cid_count: scores.cid_count(),
        rrp_curve: scores.rrp_ecdf().curve(),
        urp_curve: scores.urp_ecdf().curve(),
        single_requester_fraction: scores.single_requester_fraction(),
        rrp_power_law: goodness_of_fit(&rrp_samples, bootstrap, 40, seed),
        urp_power_law: goodness_of_fit(&urp_samples, bootstrap, 40, seed.wrapping_add(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EntryFlags, TraceEntry};
    use ipfs_mon_bitswap::RequestType;
    use ipfs_mon_simnet::time::SimTime;
    use ipfs_mon_types::{Country, Multiaddr, Multicodec, Transport};

    fn entry(peer: u64, cid: u8, rtype: RequestType, flags: EntryFlags) -> TraceEntry {
        TraceEntry {
            timestamp: SimTime::from_secs(peer),
            peer: PeerId::derived(5, peer),
            address: Multiaddr::new(1, 4001, Transport::Tcp, Country::Us),
            request_type: rtype,
            cid: Cid::new_v1(Multicodec::Raw, &[cid]),
            monitor: 0,
            flags,
        }
    }

    #[test]
    fn rrp_counts_requests_and_urp_counts_peers() {
        let trace = UnifiedTrace {
            entries: vec![
                entry(1, 1, RequestType::WantHave, EntryFlags::default()),
                entry(2, 1, RequestType::WantHave, EntryFlags::default()),
                entry(2, 1, RequestType::WantBlock, EntryFlags::default()),
                entry(3, 2, RequestType::WantHave, EntryFlags::default()),
            ],
        };
        let scores = popularity_scores(&trace);
        let cid1 = Cid::new_v1(Multicodec::Raw, &[1]);
        let cid2 = Cid::new_v1(Multicodec::Raw, &[2]);
        assert_eq!(scores.rrp[&cid1], 3);
        assert_eq!(scores.urp[&cid1], 2, "peer 2 counted once");
        assert_eq!(scores.rrp[&cid2], 1);
        assert_eq!(scores.cid_count(), 2);
        assert_eq!(scores.single_requester_fraction(), 0.5);
    }

    #[test]
    fn cancels_and_flagged_entries_are_excluded() {
        let dup = EntryFlags {
            inter_monitor_duplicate: true,
            rebroadcast: false,
        };
        let rebroadcast = EntryFlags {
            inter_monitor_duplicate: false,
            rebroadcast: true,
        };
        let trace = UnifiedTrace {
            entries: vec![
                entry(1, 1, RequestType::WantHave, EntryFlags::default()),
                entry(1, 1, RequestType::WantHave, dup),
                entry(1, 1, RequestType::WantHave, rebroadcast),
                entry(1, 1, RequestType::Cancel, EntryFlags::default()),
            ],
        };
        let scores = popularity_scores(&trace);
        let cid1 = Cid::new_v1(Multicodec::Raw, &[1]);
        assert_eq!(scores.rrp[&cid1], 1);
        assert_eq!(scores.urp[&cid1], 1);
    }

    #[test]
    fn top_k_is_ordered() {
        let mut entries = Vec::new();
        for peer in 0..10u64 {
            entries.push(entry(peer, 1, RequestType::WantHave, EntryFlags::default()));
        }
        for peer in 0..3u64 {
            entries.push(entry(
                peer + 100,
                2,
                RequestType::WantHave,
                EntryFlags::default(),
            ));
        }
        let scores = popularity_scores(&UnifiedTrace { entries });
        let top = scores.top_k(2, true);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 10);
        assert_eq!(top[1].1, 3);
    }

    #[test]
    fn report_on_skewed_trace_rejects_power_law() {
        // Build a trace whose URP distribution is a narrow log-normal-like
        // body (clearly not a power law): many CIDs with mid-range counts.
        let mut entries = Vec::new();
        let mut rng_state = 1u64;
        let mut next = || {
            // xorshift for determinism without pulling in rand here
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for cid in 0..200u8 {
            let requesters = 20 + next() % 30;
            for peer in 0..requesters {
                entries.push(entry(
                    peer * 1000 + cid as u64,
                    cid,
                    RequestType::WantHave,
                    EntryFlags::default(),
                ));
            }
        }
        let report = popularity_report(&UnifiedTrace { entries }, 40, 7);
        assert_eq!(report.cid_count, 200);
        let urp = report.urp_power_law.expect("enough samples to fit");
        assert!(urp.rejected, "p = {}", urp.p_value);
    }

    #[test]
    fn empty_trace_produces_empty_report() {
        let report = popularity_report(&UnifiedTrace::default(), 10, 1);
        assert_eq!(report.cid_count, 0);
        assert!(report.rrp_curve.is_empty());
        assert!(report.rrp_power_law.is_none());
        assert_eq!(report.single_requester_fraction, 0.0);
    }
}
