//! Request-workload generation.
//!
//! Generates the two request streams of a scenario:
//!
//! * **node-initiated ("homegrown") requests** — each node runs a Poisson
//!   request process while it is online, with a per-node rate drawn from a
//!   heavy-tailed distribution (most nodes request rarely, a few are extremely
//!   active — the paper explicitly observes such outliers);
//! * **gateway HTTP requests** — a Poisson stream per gateway operator,
//!   weighted by the operator's traffic share, with its own (typically more
//!   head-heavy) popularity profile.
//!
//! Each stream exists in two byte-identical forms: the eager generators
//! ([`generate_node_requests`] / [`generate_gateway_requests`]) that
//! materialize `Vec`s, and the pull-based sources
//! ([`lazy_workload_sources`]) that replay the *same* RNG draw sequence one
//! event at a time, so a simulation can run arbitrarily long horizons
//! without ever holding the full request list in memory.

use crate::popularity::{PopularityModel, PopularitySampler};
use ipfs_mon_node::{
    DynWorkloadSource, GatewayRequestEvent, NodeSpec, RequestEvent, WorkloadEvent,
};
use ipfs_mon_simnet::churn::OnlineSession;
use ipfs_mon_simnet::rng::SimRng;
use ipfs_mon_simnet::source::EventSource;
use ipfs_mon_simnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the request workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestWorkloadConfig {
    /// Mean request rate per node, in requests per hour of online time.
    pub mean_node_requests_per_hour: f64,
    /// Pareto shape of the per-node rate distribution (lower = heavier tail;
    /// must be > 1 so the mean exists).
    pub rate_shape: f64,
    /// Popularity model for node-initiated requests.
    pub node_popularity: PopularityModel,
    /// Total gateway HTTP request rate (requests per hour across all
    /// operators).
    pub gateway_requests_per_hour: f64,
    /// Popularity model for gateway requests.
    pub gateway_popularity: PopularityModel,
}

impl Default for RequestWorkloadConfig {
    fn default() -> Self {
        Self {
            mean_node_requests_per_hour: 2.0,
            rate_shape: 1.6,
            node_popularity: PopularityModel::paper_default(),
            gateway_requests_per_hour: 400.0,
            gateway_popularity: PopularityModel::Zipf { exponent: 1.1 },
        }
    }
}

/// Generates node-initiated requests for the given population and catalog
/// size.
pub fn generate_node_requests(
    config: &RequestWorkloadConfig,
    nodes: &[NodeSpec],
    catalog_size: usize,
    rng: &mut SimRng,
) -> Vec<RequestEvent> {
    assert!(catalog_size > 0, "catalog must not be empty");
    let mut sampler_rng = rng.derive("node-popularity");
    let sampler = PopularitySampler::new(config.node_popularity, catalog_size, &mut sampler_rng);
    let mut requests = Vec::new();
    for (index, node) in nodes.iter().enumerate() {
        // Gateway nodes are driven by the HTTP workload, not by local users.
        if node.config.role.is_gateway() {
            continue;
        }
        let mut node_rng = rng.derive_indexed("requests", index as u64);
        // Per-node rate: Pareto around the configured mean.
        let shape = config.rate_shape.max(1.05);
        let x_min = config.mean_node_requests_per_hour * (shape - 1.0) / shape;
        let rate_per_hour = node_rng.sample_pareto(x_min.max(1e-3), shape);
        let mean_gap_secs = 3600.0 / rate_per_hour;
        for session in &node.schedule.sessions {
            let mut t = session.start;
            loop {
                let gap = node_rng.sample_exponential(mean_gap_secs);
                t += SimDuration::from_secs_f64(gap);
                if t >= session.end {
                    break;
                }
                requests.push(RequestEvent {
                    at: t,
                    node: index,
                    content: sampler.sample(&mut node_rng),
                });
            }
        }
    }
    requests.sort_by_key(|r| r.at);
    requests
}

/// Generates gateway HTTP requests over `horizon` for the given operators'
/// traffic shares.
pub fn generate_gateway_requests(
    config: &RequestWorkloadConfig,
    operator_shares: &[f64],
    catalog_size: usize,
    horizon: SimDuration,
    rng: &mut SimRng,
) -> Vec<GatewayRequestEvent> {
    assert!(catalog_size > 0, "catalog must not be empty");
    if operator_shares.is_empty() || config.gateway_requests_per_hour <= 0.0 {
        return Vec::new();
    }
    let mut sampler_rng = rng.derive("gateway-popularity");
    let sampler = PopularitySampler::new(config.gateway_popularity, catalog_size, &mut sampler_rng);
    let mut stream_rng = rng.derive("gateway-arrivals");
    let mean_gap_secs = 3600.0 / config.gateway_requests_per_hour;
    let horizon_end = SimTime::ZERO + horizon;
    let mut requests = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        let gap = stream_rng.sample_exponential(mean_gap_secs);
        t += SimDuration::from_secs_f64(gap);
        if t >= horizon_end {
            break;
        }
        let operator = stream_rng.sample_weighted_index(operator_shares);
        requests.push(GatewayRequestEvent {
            at: t,
            operator,
            content: sampler.sample(&mut stream_rng),
        });
    }
    requests
}

/// The Poisson request process of one node, pulled one event at a time.
///
/// Draw-for-draw identical to the per-node body of
/// [`generate_node_requests`]: the per-node rate is sampled on first use,
/// then gaps and content picks alternate exactly as the eager loop drew
/// them, so merging these sources by `(time, node rank)` reproduces the
/// eager, stably-time-sorted request vector byte for byte.
struct NodeRequestSource {
    node: usize,
    sessions: Arc<[OnlineSession]>,
    sampler: Arc<PopularitySampler>,
    rng: SimRng,
    mean_gap_secs: f64,
    session_idx: usize,
    t: SimTime,
    head: Option<(SimTime, usize)>,
}

impl NodeRequestSource {
    fn new(
        node: usize,
        sessions: Arc<[OnlineSession]>,
        sampler: Arc<PopularitySampler>,
        mut rng: SimRng,
        rate_mean_per_hour: f64,
        rate_shape: f64,
    ) -> Self {
        // Per-node rate: Pareto around the configured mean (the first draw
        // the eager generator makes from this node's stream).
        let x_min = rate_mean_per_hour * (rate_shape - 1.0) / rate_shape;
        let rate_per_hour = rng.sample_pareto(x_min.max(1e-3), rate_shape);
        let t = sessions.first().map(|s| s.start).unwrap_or(SimTime::ZERO);
        let mut source = Self {
            node,
            sessions,
            sampler,
            rng,
            mean_gap_secs: 3600.0 / rate_per_hour,
            session_idx: 0,
            t,
            head: None,
        };
        source.advance_head();
        source
    }

    /// Advances the Poisson walk to the next in-session arrival.
    fn advance_head(&mut self) {
        loop {
            let Some(session) = self.sessions.get(self.session_idx) else {
                self.head = None;
                return;
            };
            let gap = self.rng.sample_exponential(self.mean_gap_secs);
            self.t += SimDuration::from_secs_f64(gap);
            if self.t >= session.end {
                self.session_idx += 1;
                if let Some(next) = self.sessions.get(self.session_idx) {
                    self.t = next.start;
                }
                continue;
            }
            let content = self.sampler.sample(&mut self.rng);
            self.head = Some((self.t, content));
            return;
        }
    }
}

impl EventSource for NodeRequestSource {
    type Event = WorkloadEvent;

    fn peek_time(&self) -> Option<SimTime> {
        self.head.map(|(t, _)| t)
    }

    fn next_event(&mut self) -> Option<(SimTime, WorkloadEvent)> {
        let (t, content) = self.head?;
        self.advance_head();
        Some((
            t,
            WorkloadEvent::Request {
                node: self.node,
                content,
            },
        ))
    }

    fn shard_hint(&self) -> Option<usize> {
        // Every event of this source acts on one node; sharded drivers can
        // co-locate it with that node's other sources.
        Some(self.node)
    }
}

/// The global gateway HTTP arrival stream, pulled one event at a time —
/// draw-for-draw identical to [`generate_gateway_requests`].
struct GatewayRequestSource {
    shares: Vec<f64>,
    sampler: Arc<PopularitySampler>,
    rng: SimRng,
    mean_gap_secs: f64,
    horizon_end: SimTime,
    t: SimTime,
    head: Option<(SimTime, usize, usize)>,
}

impl GatewayRequestSource {
    fn new(
        shares: Vec<f64>,
        sampler: Arc<PopularitySampler>,
        rng: SimRng,
        mean_gap_secs: f64,
        horizon_end: SimTime,
    ) -> Self {
        let mut source = Self {
            shares,
            sampler,
            rng,
            mean_gap_secs,
            horizon_end,
            t: SimTime::ZERO,
            head: None,
        };
        source.advance_head();
        source
    }

    fn advance_head(&mut self) {
        let gap = self.rng.sample_exponential(self.mean_gap_secs);
        self.t += SimDuration::from_secs_f64(gap);
        if self.t >= self.horizon_end {
            self.head = None;
            return;
        }
        let operator = self.rng.sample_weighted_index(&self.shares);
        let content = self.sampler.sample(&mut self.rng);
        self.head = Some((self.t, operator, content));
    }
}

impl EventSource for GatewayRequestSource {
    type Event = WorkloadEvent;

    fn peek_time(&self) -> Option<SimTime> {
        self.head.map(|(t, _, _)| t)
    }

    fn next_event(&mut self) -> Option<(SimTime, WorkloadEvent)> {
        let (t, operator, content) = self.head?;
        self.advance_head();
        Some((t, WorkloadEvent::Gateway { operator, content }))
    }
}

/// Builds the full set of lazy workload sources for a scenario: one
/// node-request source per non-gateway node in index order, followed by
/// the gateway stream — exactly the rank order
/// [`ipfs_mon_node::Network::with_sources`] needs to reproduce the
/// materialized delivery sequence.
///
/// `node_rng` must be the `"requests"`-derived stream and `gateway_rng` the
/// `"gateway-requests"`-derived stream of the scenario seed, the same
/// streams the eager generators receive in `build_scenario`.
pub fn lazy_workload_sources(
    config: &RequestWorkloadConfig,
    nodes: &[NodeSpec],
    operator_shares: &[f64],
    catalog_size: usize,
    horizon: SimDuration,
    node_rng: &SimRng,
    gateway_rng: &SimRng,
) -> Vec<DynWorkloadSource> {
    assert!(catalog_size > 0, "catalog must not be empty");
    let mut sources: Vec<DynWorkloadSource> = Vec::new();

    let mut sampler_rng = node_rng.derive("node-popularity");
    let node_sampler = Arc::new(PopularitySampler::new(
        config.node_popularity,
        catalog_size,
        &mut sampler_rng,
    ));
    let shape = config.rate_shape.max(1.05);
    for (index, node) in nodes.iter().enumerate() {
        // Gateway nodes are driven by the HTTP workload, not by local users.
        if node.config.role.is_gateway() {
            continue;
        }
        let rng = node_rng.derive_indexed("requests", index as u64);
        sources.push(Box::new(NodeRequestSource::new(
            index,
            node.schedule.sessions.clone().into(),
            Arc::clone(&node_sampler),
            rng,
            config.mean_node_requests_per_hour,
            shape,
        )));
    }

    if !operator_shares.is_empty() && config.gateway_requests_per_hour > 0.0 {
        let mut sampler_rng = gateway_rng.derive("gateway-popularity");
        let gateway_sampler = Arc::new(PopularitySampler::new(
            config.gateway_popularity,
            catalog_size,
            &mut sampler_rng,
        ));
        let stream_rng = gateway_rng.derive("gateway-arrivals");
        sources.push(Box::new(GatewayRequestSource::new(
            operator_shares.to_vec(),
            gateway_sampler,
            stream_rng,
            3600.0 / config.gateway_requests_per_hour,
            SimTime::ZERO + horizon,
        )));
    }
    sources
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipfs_mon_node::{NodeConfig, UpgradeSchedule};
    use ipfs_mon_simnet::churn::{NodeSchedule, OnlineSession};
    use ipfs_mon_types::Country;

    fn node(online_hours: u64) -> NodeSpec {
        NodeSpec {
            config: NodeConfig::regular(),
            country: Country::De,
            schedule: NodeSchedule {
                stable: true,
                sessions: vec![OnlineSession {
                    start: SimTime::ZERO,
                    end: SimTime::ZERO + SimDuration::from_hours(online_hours),
                }],
            },
            upgrade: UpgradeSchedule::always_modern(),
            connections: 700,
        }
    }

    fn gateway_node() -> NodeSpec {
        NodeSpec {
            config: NodeConfig::gateway(),
            ..node(24)
        }
    }

    #[test]
    fn request_count_scales_with_rate_and_duration() {
        let config = RequestWorkloadConfig {
            mean_node_requests_per_hour: 4.0,
            rate_shape: 8.0, // nearly deterministic rates for this test
            ..Default::default()
        };
        let nodes: Vec<NodeSpec> = (0..200).map(|_| node(24)).collect();
        let mut rng = SimRng::new(1);
        let requests = generate_node_requests(&config, &nodes, 100, &mut rng);
        // ≈ 200 nodes * 24 h * ~3.5..4 req/h (Pareto mean ≈ configured mean).
        let expected = 200.0 * 24.0 * 4.0;
        let actual = requests.len() as f64;
        assert!(
            actual > expected * 0.6 && actual < expected * 1.6,
            "expected ≈{expected}, got {actual}"
        );
    }

    #[test]
    fn requests_fall_within_online_sessions() {
        let config = RequestWorkloadConfig::default();
        let nodes = vec![node(5)];
        let mut rng = SimRng::new(2);
        let requests = generate_node_requests(&config, &nodes, 50, &mut rng);
        for r in &requests {
            assert!(r.at < SimTime::ZERO + SimDuration::from_hours(5));
            assert_eq!(r.node, 0);
            assert!(r.content < 50);
        }
    }

    #[test]
    fn gateway_nodes_generate_no_local_requests() {
        let config = RequestWorkloadConfig::default();
        let nodes = vec![gateway_node(), node(24)];
        let mut rng = SimRng::new(3);
        let requests = generate_node_requests(&config, &nodes, 10, &mut rng);
        assert!(requests.iter().all(|r| r.node == 1));
    }

    #[test]
    fn requests_are_time_sorted() {
        let config = RequestWorkloadConfig::default();
        let nodes: Vec<NodeSpec> = (0..50).map(|_| node(12)).collect();
        let mut rng = SimRng::new(4);
        let requests = generate_node_requests(&config, &nodes, 100, &mut rng);
        for pair in requests.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn gateway_requests_follow_traffic_shares() {
        let config = RequestWorkloadConfig {
            gateway_requests_per_hour: 2_000.0,
            ..Default::default()
        };
        let mut rng = SimRng::new(5);
        let requests = generate_gateway_requests(
            &config,
            &[0.8, 0.2],
            100,
            SimDuration::from_hours(24),
            &mut rng,
        );
        assert!(!requests.is_empty());
        let op0 = requests.iter().filter(|r| r.operator == 0).count() as f64;
        let share = op0 / requests.len() as f64;
        assert!((share - 0.8).abs() < 0.05, "share {share}");
    }

    #[test]
    fn zero_gateway_rate_produces_no_requests() {
        let config = RequestWorkloadConfig {
            gateway_requests_per_hour: 0.0,
            ..Default::default()
        };
        let mut rng = SimRng::new(6);
        assert!(generate_gateway_requests(
            &config,
            &[1.0],
            10,
            SimDuration::from_hours(1),
            &mut rng
        )
        .is_empty());
    }

    #[test]
    fn lazy_sources_replay_eager_streams_exactly() {
        use ipfs_mon_simnet::churn::ChurnModel;

        let config = RequestWorkloadConfig {
            gateway_requests_per_hour: 300.0,
            ..Default::default()
        };
        let horizon = SimDuration::from_hours(24);
        let churn = ChurnModel::default();
        let parent = SimRng::new(41);
        let mut nodes: Vec<NodeSpec> = (0..20)
            .map(|i| {
                let mut node_rng = parent.derive_indexed("churn", i);
                NodeSpec {
                    schedule: churn.schedule(&mut node_rng, horizon),
                    ..node(24)
                }
            })
            .collect();
        nodes.push(gateway_node());
        let shares = [0.7, 0.3];
        let catalog = 60;

        let rng = SimRng::new(17);
        let mut eager_rng = rng.derive("requests");
        let eager = generate_node_requests(&config, &nodes, catalog, &mut eager_rng);
        let mut eager_gw_rng = rng.derive("gateway-requests");
        let eager_gw =
            generate_gateway_requests(&config, &shares, catalog, horizon, &mut eager_gw_rng);

        let mut sources = lazy_workload_sources(
            &config,
            &nodes,
            &shares,
            catalog,
            horizon,
            &rng.derive("requests"),
            &rng.derive("gateway-requests"),
        );
        // One source per non-gateway node, plus the gateway stream.
        assert_eq!(sources.len(), 21);

        // Drain each source; a rank-stable merge must reproduce the eager,
        // stably time-sorted request vector byte for byte.
        let mut merged: Vec<(SimTime, usize, WorkloadEvent)> = Vec::new();
        for (rank, source) in sources.iter_mut().enumerate() {
            let mut last = SimTime::ZERO;
            while let Some(t) = source.peek_time() {
                let (at, event) = source.next_event().expect("peek implies event");
                assert_eq!(at, t);
                assert!(at >= last, "nondecreasing within a source");
                last = at;
                merged.push((at, rank, event));
            }
            assert_eq!(source.next_event(), None);
        }
        merged.sort_by_key(|&(t, rank, _)| (t, rank));

        let node_events: Vec<&(SimTime, usize, WorkloadEvent)> = merged
            .iter()
            .filter(|(_, _, e)| matches!(e, WorkloadEvent::Request { .. }))
            .collect();
        assert_eq!(node_events.len(), eager.len());
        for (lazy, eager) in node_events.iter().zip(&eager) {
            assert_eq!(lazy.0, eager.at);
            assert_eq!(
                lazy.2,
                WorkloadEvent::Request {
                    node: eager.node,
                    content: eager.content
                }
            );
        }

        let gw_events: Vec<&(SimTime, usize, WorkloadEvent)> = merged
            .iter()
            .filter(|(_, _, e)| matches!(e, WorkloadEvent::Gateway { .. }))
            .collect();
        assert_eq!(gw_events.len(), eager_gw.len());
        for (lazy, eager) in gw_events.iter().zip(&eager_gw) {
            assert_eq!(lazy.0, eager.at);
            assert_eq!(
                lazy.2,
                WorkloadEvent::Gateway {
                    operator: eager.operator,
                    content: eager.content
                }
            );
        }
    }

    #[test]
    fn zero_gateway_rate_produces_no_gateway_source() {
        let config = RequestWorkloadConfig {
            gateway_requests_per_hour: 0.0,
            ..Default::default()
        };
        let nodes = vec![node(2)];
        let rng = SimRng::new(1);
        let sources = lazy_workload_sources(
            &config,
            &nodes,
            &[1.0],
            10,
            SimDuration::from_hours(1),
            &rng.derive("requests"),
            &rng.derive("gateway-requests"),
        );
        assert_eq!(sources.len(), 1, "only the node source remains");
    }

    #[test]
    fn per_node_rates_are_heterogeneous() {
        let config = RequestWorkloadConfig {
            mean_node_requests_per_hour: 2.0,
            rate_shape: 1.3,
            ..Default::default()
        };
        let nodes: Vec<NodeSpec> = (0..300).map(|_| node(24)).collect();
        let mut rng = SimRng::new(7);
        let requests = generate_node_requests(&config, &nodes, 200, &mut rng);
        let mut per_node = vec![0usize; 300];
        for r in &requests {
            per_node[r.node] += 1;
        }
        let max = *per_node.iter().max().unwrap();
        let median = {
            let mut sorted = per_node.clone();
            sorted.sort_unstable();
            sorted[150]
        };
        assert!(
            max as f64 > 4.0 * median.max(1) as f64,
            "heavy tail expected: max {max}, median {median}"
        );
    }
}
