//! Request-workload generation.
//!
//! Generates the two request streams of a scenario:
//!
//! * **node-initiated ("homegrown") requests** — each node runs a Poisson
//!   request process while it is online, with a per-node rate drawn from a
//!   heavy-tailed distribution (most nodes request rarely, a few are extremely
//!   active — the paper explicitly observes such outliers);
//! * **gateway HTTP requests** — a Poisson stream per gateway operator,
//!   weighted by the operator's traffic share, with its own (typically more
//!   head-heavy) popularity profile.

use crate::popularity::{PopularityModel, PopularitySampler};
use ipfs_mon_node::{GatewayRequestEvent, NodeSpec, RequestEvent};
use ipfs_mon_simnet::rng::SimRng;
use ipfs_mon_simnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of the request workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestWorkloadConfig {
    /// Mean request rate per node, in requests per hour of online time.
    pub mean_node_requests_per_hour: f64,
    /// Pareto shape of the per-node rate distribution (lower = heavier tail;
    /// must be > 1 so the mean exists).
    pub rate_shape: f64,
    /// Popularity model for node-initiated requests.
    pub node_popularity: PopularityModel,
    /// Total gateway HTTP request rate (requests per hour across all
    /// operators).
    pub gateway_requests_per_hour: f64,
    /// Popularity model for gateway requests.
    pub gateway_popularity: PopularityModel,
}

impl Default for RequestWorkloadConfig {
    fn default() -> Self {
        Self {
            mean_node_requests_per_hour: 2.0,
            rate_shape: 1.6,
            node_popularity: PopularityModel::paper_default(),
            gateway_requests_per_hour: 400.0,
            gateway_popularity: PopularityModel::Zipf { exponent: 1.1 },
        }
    }
}

/// Generates node-initiated requests for the given population and catalog
/// size.
pub fn generate_node_requests(
    config: &RequestWorkloadConfig,
    nodes: &[NodeSpec],
    catalog_size: usize,
    rng: &mut SimRng,
) -> Vec<RequestEvent> {
    assert!(catalog_size > 0, "catalog must not be empty");
    let mut sampler_rng = rng.derive("node-popularity");
    let sampler = PopularitySampler::new(config.node_popularity, catalog_size, &mut sampler_rng);
    let mut requests = Vec::new();
    for (index, node) in nodes.iter().enumerate() {
        // Gateway nodes are driven by the HTTP workload, not by local users.
        if node.config.role.is_gateway() {
            continue;
        }
        let mut node_rng = rng.derive_indexed("requests", index as u64);
        // Per-node rate: Pareto around the configured mean.
        let shape = config.rate_shape.max(1.05);
        let x_min = config.mean_node_requests_per_hour * (shape - 1.0) / shape;
        let rate_per_hour = node_rng.sample_pareto(x_min.max(1e-3), shape);
        let mean_gap_secs = 3600.0 / rate_per_hour;
        for session in &node.schedule.sessions {
            let mut t = session.start;
            loop {
                let gap = node_rng.sample_exponential(mean_gap_secs);
                t += SimDuration::from_secs_f64(gap);
                if t >= session.end {
                    break;
                }
                requests.push(RequestEvent {
                    at: t,
                    node: index,
                    content: sampler.sample(&mut node_rng),
                });
            }
        }
    }
    requests.sort_by_key(|r| r.at);
    requests
}

/// Generates gateway HTTP requests over `horizon` for the given operators'
/// traffic shares.
pub fn generate_gateway_requests(
    config: &RequestWorkloadConfig,
    operator_shares: &[f64],
    catalog_size: usize,
    horizon: SimDuration,
    rng: &mut SimRng,
) -> Vec<GatewayRequestEvent> {
    assert!(catalog_size > 0, "catalog must not be empty");
    if operator_shares.is_empty() || config.gateway_requests_per_hour <= 0.0 {
        return Vec::new();
    }
    let mut sampler_rng = rng.derive("gateway-popularity");
    let sampler = PopularitySampler::new(config.gateway_popularity, catalog_size, &mut sampler_rng);
    let mut stream_rng = rng.derive("gateway-arrivals");
    let mean_gap_secs = 3600.0 / config.gateway_requests_per_hour;
    let horizon_end = SimTime::ZERO + horizon;
    let mut requests = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        let gap = stream_rng.sample_exponential(mean_gap_secs);
        t += SimDuration::from_secs_f64(gap);
        if t >= horizon_end {
            break;
        }
        let operator = stream_rng.sample_weighted_index(operator_shares);
        requests.push(GatewayRequestEvent {
            at: t,
            operator,
            content: sampler.sample(&mut stream_rng),
        });
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipfs_mon_node::{NodeConfig, UpgradeSchedule};
    use ipfs_mon_simnet::churn::{NodeSchedule, OnlineSession};
    use ipfs_mon_types::Country;

    fn node(online_hours: u64) -> NodeSpec {
        NodeSpec {
            config: NodeConfig::regular(),
            country: Country::De,
            schedule: NodeSchedule {
                stable: true,
                sessions: vec![OnlineSession {
                    start: SimTime::ZERO,
                    end: SimTime::ZERO + SimDuration::from_hours(online_hours),
                }],
            },
            upgrade: UpgradeSchedule::always_modern(),
            connections: 700,
        }
    }

    fn gateway_node() -> NodeSpec {
        NodeSpec {
            config: NodeConfig::gateway(),
            ..node(24)
        }
    }

    #[test]
    fn request_count_scales_with_rate_and_duration() {
        let config = RequestWorkloadConfig {
            mean_node_requests_per_hour: 4.0,
            rate_shape: 8.0, // nearly deterministic rates for this test
            ..Default::default()
        };
        let nodes: Vec<NodeSpec> = (0..200).map(|_| node(24)).collect();
        let mut rng = SimRng::new(1);
        let requests = generate_node_requests(&config, &nodes, 100, &mut rng);
        // ≈ 200 nodes * 24 h * ~3.5..4 req/h (Pareto mean ≈ configured mean).
        let expected = 200.0 * 24.0 * 4.0;
        let actual = requests.len() as f64;
        assert!(
            actual > expected * 0.6 && actual < expected * 1.6,
            "expected ≈{expected}, got {actual}"
        );
    }

    #[test]
    fn requests_fall_within_online_sessions() {
        let config = RequestWorkloadConfig::default();
        let nodes = vec![node(5)];
        let mut rng = SimRng::new(2);
        let requests = generate_node_requests(&config, &nodes, 50, &mut rng);
        for r in &requests {
            assert!(r.at < SimTime::ZERO + SimDuration::from_hours(5));
            assert_eq!(r.node, 0);
            assert!(r.content < 50);
        }
    }

    #[test]
    fn gateway_nodes_generate_no_local_requests() {
        let config = RequestWorkloadConfig::default();
        let nodes = vec![gateway_node(), node(24)];
        let mut rng = SimRng::new(3);
        let requests = generate_node_requests(&config, &nodes, 10, &mut rng);
        assert!(requests.iter().all(|r| r.node == 1));
    }

    #[test]
    fn requests_are_time_sorted() {
        let config = RequestWorkloadConfig::default();
        let nodes: Vec<NodeSpec> = (0..50).map(|_| node(12)).collect();
        let mut rng = SimRng::new(4);
        let requests = generate_node_requests(&config, &nodes, 100, &mut rng);
        for pair in requests.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn gateway_requests_follow_traffic_shares() {
        let config = RequestWorkloadConfig {
            gateway_requests_per_hour: 2_000.0,
            ..Default::default()
        };
        let mut rng = SimRng::new(5);
        let requests = generate_gateway_requests(
            &config,
            &[0.8, 0.2],
            100,
            SimDuration::from_hours(24),
            &mut rng,
        );
        assert!(!requests.is_empty());
        let op0 = requests.iter().filter(|r| r.operator == 0).count() as f64;
        let share = op0 / requests.len() as f64;
        assert!((share - 0.8).abs() < 0.05, "share {share}");
    }

    #[test]
    fn zero_gateway_rate_produces_no_requests() {
        let config = RequestWorkloadConfig {
            gateway_requests_per_hour: 0.0,
            ..Default::default()
        };
        let mut rng = SimRng::new(6);
        assert!(generate_gateway_requests(
            &config,
            &[1.0],
            10,
            SimDuration::from_hours(1),
            &mut rng
        )
        .is_empty());
    }

    #[test]
    fn per_node_rates_are_heterogeneous() {
        let config = RequestWorkloadConfig {
            mean_node_requests_per_hour: 2.0,
            rate_shape: 1.3,
            ..Default::default()
        };
        let nodes: Vec<NodeSpec> = (0..300).map(|_| node(24)).collect();
        let mut rng = SimRng::new(7);
        let requests = generate_node_requests(&config, &nodes, 200, &mut rng);
        let mut per_node = vec![0usize; 300];
        for r in &requests {
            per_node[r.node] += 1;
        }
        let max = *per_node.iter().max().unwrap();
        let median = {
            let mut sorted = per_node.clone();
            sorted.sort_unstable();
            sorted[150]
        };
        assert!(
            max as f64 > 4.0 * median.max(1) as f64,
            "heavy tail expected: max {max}, median {median}"
        );
    }
}
