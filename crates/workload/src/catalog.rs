//! Content-catalog generation.
//!
//! Produces the set of content items that exists "on the network" during a
//! run: file DAGs, directories and typed single blocks, with a multicodec mix
//! matching Table I of the paper, a configurable fraction of unresolvable
//! items (CIDs with no providers — the paper observes that many popular-by-RRP
//! CIDs cannot be resolved at all), and initial providers drawn from the node
//! population.

use ipfs_mon_blockstore::{build_file, build_typed_item};
use ipfs_mon_node::ContentSpec;
use ipfs_mon_simnet::rng::SimRng;
use ipfs_mon_types::Multicodec;
use serde::{Deserialize, Serialize};

/// Relative frequency of each multicodec among catalog items.
///
/// Note: Table I reports *request* shares, which are driven by both the
/// catalog mix and popularity; the defaults below yield request shares close
/// to the paper's once the popularity model is applied.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MulticodecMix {
    /// `(codec, weight)` entries.
    pub entries: Vec<(Multicodec, f64)>,
}

impl MulticodecMix {
    /// A mix approximating the paper's Table I request shares:
    /// DagProtobuf ≈ 86 %, Raw ≈ 13 %, DagCBOR ≈ 0.4 %, traces of GitRaw,
    /// EthereumTx and other codecs.
    pub fn paper_table1() -> Self {
        Self {
            entries: vec![
                (Multicodec::DagProtobuf, 86.21),
                (Multicodec::Raw, 13.42),
                (Multicodec::DagCbor, 0.37),
                (Multicodec::GitRaw, 0.002),
                (Multicodec::EthereumTx, 0.0006),
                (Multicodec::DagJson, 0.0005),
                (Multicodec::Libp2pKey, 0.0004),
            ],
        }
    }

    /// Samples a codec according to the weights.
    pub fn sample(&self, rng: &mut SimRng) -> Multicodec {
        let weights: Vec<f64> = self.entries.iter().map(|(_, w)| *w).collect();
        self.entries[rng.sample_weighted_index(&weights)].0
    }
}

/// Configuration of the content catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Number of content items.
    pub items: usize,
    /// Multicodec mix.
    pub codec_mix: MulticodecMix,
    /// Fraction of items that have no providers at all (unresolvable CIDs).
    pub unresolvable_fraction: f64,
    /// Maximum number of initial providers per resolvable item (at least one
    /// is always assigned).
    pub max_providers: usize,
    /// Mean logical size of file items in bytes (sizes are Pareto-distributed
    /// around this mean, so most files are small and a few are huge).
    pub mean_file_size: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            items: 2_000,
            codec_mix: MulticodecMix::paper_table1(),
            unresolvable_fraction: 0.25,
            max_providers: 5,
            mean_file_size: 512 * 1024,
        }
    }
}

/// Generates the content catalog for a population of `node_count` nodes.
pub fn generate_catalog(
    config: &CatalogConfig,
    node_count: usize,
    rng: &mut SimRng,
) -> Vec<ContentSpec> {
    use rand::Rng;
    assert!(node_count > 0, "need at least one node to host content");
    let mut catalog = Vec::with_capacity(config.items);
    for _item in 0..config.items {
        let codec = config.codec_mix.sample(rng);
        let seed = rng.gen::<u64>();
        let dag = match codec {
            Multicodec::DagProtobuf | Multicodec::Raw => {
                // File-like content: Pareto-distributed logical size. Small
                // files import as a single raw leaf (codec Raw roots), larger
                // ones get a DagProtobuf root, which is how the two dominant
                // codecs of Table I arise naturally.
                let shape = 1.3;
                let x_min = config.mean_file_size as f64 * (shape - 1.0) / shape;
                let size = rng
                    .sample_pareto(x_min.max(1024.0), shape)
                    .min(64.0 * 1024.0 * 1024.0);
                let mut dag = build_file(seed, size as u64, 256 * 1024, 174);
                match codec {
                    Multicodec::Raw if dag.root.codec() != Multicodec::Raw => {
                        // Force a raw single-block item when the mix asked for raw.
                        dag = build_typed_item(Multicodec::Raw, seed, size as u64);
                    }
                    Multicodec::DagProtobuf if dag.root.codec() != Multicodec::DagProtobuf => {
                        // Small single-chunk files import as bare raw leaves;
                        // wrap them in a UnixFS-style dag-pb node so the root
                        // carries the requested codec (as `ipfs add` does by
                        // default).
                        dag = ipfs_mon_blockstore::build_directory(&[("file".to_string(), &dag)]);
                    }
                    _ => {}
                }
                dag
            }
            other => {
                let size = rng.gen_range(128..16_384);
                build_typed_item(other, seed, size)
            }
        };
        let unresolvable = rng.gen_bool(config.unresolvable_fraction.clamp(0.0, 1.0));
        let initial_providers = if unresolvable {
            Vec::new()
        } else {
            let count = rng.gen_range(1..=config.max_providers.max(1));
            (0..count).map(|_| rng.gen_range(0..node_count)).collect()
        };
        catalog.push(ContentSpec {
            dag,
            initial_providers,
        });
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog(items: usize, unresolvable: f64, seed: u64) -> Vec<ContentSpec> {
        let config = CatalogConfig {
            items,
            unresolvable_fraction: unresolvable,
            ..CatalogConfig::default()
        };
        let mut rng = SimRng::new(seed);
        generate_catalog(&config, 100, &mut rng)
    }

    #[test]
    fn generates_requested_number_of_items() {
        let catalog = catalog(500, 0.2, 1);
        assert_eq!(catalog.len(), 500);
    }

    #[test]
    fn codec_mix_is_dominated_by_dagpb_and_raw() {
        let catalog = catalog(2_000, 0.0, 2);
        let dagpb = catalog
            .iter()
            .filter(|c| c.dag.root.codec() == Multicodec::DagProtobuf)
            .count() as f64;
        let raw = catalog
            .iter()
            .filter(|c| c.dag.root.codec() == Multicodec::Raw)
            .count() as f64;
        let total = catalog.len() as f64;
        assert!(
            (dagpb + raw) / total > 0.97,
            "file codecs dominate: {}",
            (dagpb + raw) / total
        );
        assert!(dagpb > raw, "DagProtobuf should outweigh Raw");
    }

    #[test]
    fn unresolvable_fraction_is_respected() {
        let catalog = catalog(4_000, 0.3, 3);
        let unresolvable = catalog.iter().filter(|c| c.is_unresolvable()).count() as f64;
        let frac = unresolvable / catalog.len() as f64;
        assert!((frac - 0.3).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn providers_are_valid_node_indices() {
        let catalog = catalog(1_000, 0.1, 4);
        for item in &catalog {
            for &p in &item.initial_providers {
                assert!(p < 100);
            }
            if !item.is_unresolvable() {
                assert!(!item.initial_providers.is_empty());
                assert!(item.initial_providers.len() <= 5);
            }
        }
    }

    #[test]
    fn roots_are_distinct() {
        let catalog = catalog(1_000, 0.0, 5);
        let mut roots: Vec<_> = catalog.iter().map(|c| c.dag.root.clone()).collect();
        let before = roots.len();
        roots.sort();
        roots.dedup();
        assert_eq!(roots.len(), before);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = catalog(100, 0.2, 42);
        let b = catalog(100, 0.2, 42);
        let roots_a: Vec<_> = a.iter().map(|c| c.dag.root.clone()).collect();
        let roots_b: Vec<_> = b.iter().map(|c| c.dag.root.clone()).collect();
        assert_eq!(roots_a, roots_b);
    }
}
