//! Workload and scenario generation for the IPFS monitoring suite.
//!
//! Experiments need realistic populations, content catalogs and request
//! streams; this crate generates all three from compact configurations:
//!
//! * [`popularity`] — content-popularity models (Zipf, log-normal, and the
//!   skewed-but-not-power-law mixture used to reproduce Fig. 5),
//! * [`catalog`] — content catalogs with the Table I multicodec mix and a
//!   configurable unresolvable fraction,
//! * [`population`] — node populations (server/client split, churn, country
//!   mix, client-version adoption, gateway operators),
//! * [`requests`] — node-initiated and gateway HTTP request processes,
//! * [`scenario`] — presets and the end-to-end [`scenario::build_scenario`].

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod popularity;
pub mod population;
pub mod requests;
pub mod scenario;

pub use catalog::{generate_catalog, CatalogConfig, MulticodecMix};
pub use popularity::{PopularityModel, PopularitySampler};
pub use population::{generate_population, OperatorConfig, Population, PopulationConfig};
pub use requests::{
    generate_gateway_requests, generate_node_requests, lazy_workload_sources, RequestWorkloadConfig,
};
pub use scenario::{build_scenario, build_scenario_lazy, MonitorConfig, ScenarioConfig};
