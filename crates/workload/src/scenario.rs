//! End-to-end scenario building.
//!
//! [`ScenarioConfig`] bundles the population, catalog, workload and monitoring
//! parameters; [`build_scenario`] turns it into an executable
//! [`Scenario`]. Every experiment binary in `ipfs-mon-bench` starts from one
//! of the presets here and tweaks the knobs relevant to its table or figure.

use crate::catalog::{generate_catalog, CatalogConfig};
use crate::population::{generate_population, PopulationConfig};
use crate::requests::{
    generate_gateway_requests, generate_node_requests, lazy_workload_sources, RequestWorkloadConfig,
};
use ipfs_mon_node::{DynWorkloadSource, MonitorSpec, Scenario, ScenarioParams};
use ipfs_mon_simnet::rng::SimRng;
use ipfs_mon_simnet::time::SimDuration;
use ipfs_mon_types::Country;
use serde::{Deserialize, Serialize};

/// Configuration of one monitor deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Label used in reports ("us", "de").
    pub label: String,
    /// Deployment country.
    pub country: Country,
    /// Probability that an online node is connected to this monitor.
    pub attach_probability: f64,
}

/// Full configuration of a generated scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// Simulated period.
    pub horizon: SimDuration,
    /// Node population.
    pub population: PopulationConfig,
    /// Content catalog.
    pub catalog: CatalogConfig,
    /// Request workload.
    pub workload: RequestWorkloadConfig,
    /// Monitoring deployment. The paper's setup: one monitor in the US and
    /// one in Germany.
    pub monitors: Vec<MonitorConfig>,
    /// Global simulation parameters.
    pub params: ScenarioParams,
}

impl ScenarioConfig {
    /// The paper-like two-monitor deployment (us + de).
    pub fn paper_monitors() -> Vec<MonitorConfig> {
        vec![
            MonitorConfig {
                label: "us".into(),
                country: Country::Us,
                attach_probability: 0.72,
            },
            MonitorConfig {
                label: "de".into(),
                country: Country::De,
                attach_probability: 0.66,
            },
        ]
    }

    /// A small scenario suitable for unit/integration tests: a few hundred
    /// nodes, a couple of simulated hours.
    pub fn small_test(seed: u64) -> Self {
        Self {
            seed,
            horizon: SimDuration::from_hours(6),
            population: PopulationConfig::small(300),
            catalog: CatalogConfig {
                items: 400,
                ..CatalogConfig::default()
            },
            workload: RequestWorkloadConfig {
                gateway_requests_per_hour: 60.0,
                ..RequestWorkloadConfig::default()
            },
            monitors: Self::paper_monitors(),
            params: ScenarioParams::default(),
        }
    }

    /// The "analysis week" preset used by most experiments: a multi-thousand
    /// node network observed for seven days by two monitors, mirroring the
    /// April 30 – May 6 2021 window the paper focuses on.
    pub fn analysis_week(seed: u64, nodes: usize) -> Self {
        Self {
            seed,
            horizon: SimDuration::from_days(7),
            population: PopulationConfig::small(nodes),
            catalog: CatalogConfig {
                items: (nodes * 4).max(1_000),
                ..CatalogConfig::default()
            },
            workload: RequestWorkloadConfig::default(),
            monitors: Self::paper_monitors(),
            params: ScenarioParams::default(),
        }
    }
}

/// Everything both scenario builders share before the request workload: the
/// generated population, catalog, operator traffic shares, and an assembled
/// scenario shell carrying them. Keeping this in one place guarantees the
/// eager and lazy builders stay draw-identical on every stream except the
/// request ones.
struct ScenarioBase {
    rng: SimRng,
    scenario: Scenario,
    operator_shares: Vec<f64>,
}

fn build_scenario_base(config: &ScenarioConfig) -> ScenarioBase {
    let rng = SimRng::new(config.seed);

    let mut population_rng = rng.derive("population");
    let population = generate_population(&config.population, config.horizon, &mut population_rng);

    let mut catalog_rng = rng.derive("catalog");
    let catalog = generate_catalog(&config.catalog, population.nodes.len(), &mut catalog_rng);

    let operator_shares: Vec<f64> = population
        .operators
        .iter()
        .map(|op| op.traffic_share.max(0.0))
        .collect();

    let mut scenario = Scenario::new(config.seed, config.horizon);
    scenario.nodes = population.nodes;
    scenario.operators = population.operators;
    scenario.content = catalog;
    scenario.params = config.params;
    scenario.monitors = config
        .monitors
        .iter()
        .map(|m| MonitorSpec::new(m.label.clone(), m.country, m.attach_probability))
        .collect();
    ScenarioBase {
        rng,
        scenario,
        operator_shares,
    }
}

/// Builds an executable scenario from a configuration.
pub fn build_scenario(config: &ScenarioConfig) -> Scenario {
    let ScenarioBase {
        rng,
        mut scenario,
        operator_shares,
    } = build_scenario_base(config);

    let mut request_rng = rng.derive("requests");
    scenario.requests = generate_node_requests(
        &config.workload,
        &scenario.nodes,
        scenario.content.len(),
        &mut request_rng,
    );
    let mut gateway_rng = rng.derive("gateway-requests");
    scenario.gateway_requests = generate_gateway_requests(
        &config.workload,
        &operator_shares,
        scenario.content.len(),
        config.horizon,
        &mut gateway_rng,
    );
    scenario
}

/// Builds a scenario whose request workload is generated *lazily*: the
/// returned scenario carries empty request vectors, and the accompanying
/// sources replay the exact RNG streams [`build_scenario`] would have drawn,
/// one event at a time. Feeding them to
/// [`ipfs_mon_node::Network::with_sources`] yields a monitor trace
/// byte-identical to running the eagerly built scenario, with memory bounded
/// by the population instead of `population × horizon`.
///
/// ```
/// use ipfs_mon_node::{Network, RecordingSink};
/// use ipfs_mon_simnet::time::SimDuration;
/// use ipfs_mon_workload::{build_scenario, build_scenario_lazy, ScenarioConfig};
///
/// let mut config = ScenarioConfig::small_test(7);
/// config.population.nodes = 20;
/// config.catalog.items = 40;
/// config.horizon = SimDuration::from_hours(1);
///
/// // Eager: the whole request vector is materialized up front…
/// let eager = build_scenario(&config);
/// assert!(!eager.requests.is_empty());
/// let mut eager_sink = RecordingSink::new(eager.monitors.len());
/// Network::new(eager).run(&mut eager_sink);
///
/// // …lazy: no vectors at all, the same events drawn while running.
/// let (scenario, sources) = build_scenario_lazy(&config);
/// assert!(scenario.requests.is_empty() && scenario.gateway_requests.is_empty());
/// let mut lazy_sink = RecordingSink::new(scenario.monitors.len());
/// Network::with_sources(scenario, sources).run(&mut lazy_sink);
///
/// assert_eq!(eager_sink.observations, lazy_sink.observations);
/// ```
pub fn build_scenario_lazy(config: &ScenarioConfig) -> (Scenario, Vec<DynWorkloadSource>) {
    let ScenarioBase {
        rng,
        scenario,
        operator_shares,
    } = build_scenario_base(config);

    let sources = lazy_workload_sources(
        &config.workload,
        &scenario.nodes,
        &operator_shares,
        scenario.content.len(),
        config.horizon,
        &rng.derive("requests"),
        &rng.derive("gateway-requests"),
    );
    (scenario, sources)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_test_scenario_is_consistent() {
        let scenario = build_scenario(&ScenarioConfig::small_test(7));
        assert!(scenario.validate().is_empty(), "{:?}", scenario.validate());
        assert_eq!(scenario.monitors.len(), 2);
        assert!(!scenario.requests.is_empty());
        assert!(!scenario.gateway_requests.is_empty());
        assert!(scenario.nodes.len() > 300, "gateway nodes appended");
    }

    #[test]
    fn scenario_generation_is_deterministic() {
        let a = build_scenario(&ScenarioConfig::small_test(11));
        let b = build_scenario(&ScenarioConfig::small_test(11));
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.gateway_requests, b.gateway_requests);
        assert_eq!(a.content.len(), b.content.len());
        assert_eq!(
            a.content.first().map(|c| c.dag.root.clone()),
            b.content.first().map(|c| c.dag.root.clone())
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_scenario(&ScenarioConfig::small_test(1));
        let b = build_scenario(&ScenarioConfig::small_test(2));
        assert_ne!(
            a.content.first().map(|c| c.dag.root.clone()),
            b.content.first().map(|c| c.dag.root.clone())
        );
    }

    #[test]
    fn lazy_scenario_runs_byte_identical_to_eager() {
        use ipfs_mon_node::{Network, RecordingSink};

        let config = ScenarioConfig::small_test(23);
        let eager = build_scenario(&config);
        let monitor_count = eager.monitors.len();
        let mut eager_sink = RecordingSink::new(monitor_count);
        let eager_report = Network::new(eager).run(&mut eager_sink);

        let (lazy, sources) = build_scenario_lazy(&config);
        assert!(lazy.requests.is_empty() && lazy.gateway_requests.is_empty());
        let mut lazy_sink = RecordingSink::new(monitor_count);
        let lazy_report = Network::with_sources(lazy, sources).run(&mut lazy_sink);

        assert_eq!(eager_sink.observations, lazy_sink.observations);
        assert_eq!(eager_sink.connections, lazy_sink.connections);
        assert_eq!(eager_report.events_processed, lazy_report.events_processed);
    }

    #[test]
    fn analysis_week_spans_seven_days() {
        let config = ScenarioConfig::analysis_week(3, 500);
        assert_eq!(config.horizon, SimDuration::from_days(7));
        let scenario = build_scenario(&config);
        assert!(scenario.validate().is_empty());
        // Requests spread across the whole week.
        let last = scenario.requests.last().unwrap().at;
        assert!(last > ipfs_mon_simnet::time::SimTime::ZERO + SimDuration::from_days(6));
    }
}
