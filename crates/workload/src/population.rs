//! Node-population generation.
//!
//! Builds the [`NodeSpec`] list of a scenario: DHT servers and clients in a
//! configurable ratio, country assignment following a [`CountryMix`], churn
//! schedules, per-node connection counts in the paper's 600–900 range,
//! protocol-upgrade times drawn from an [`AdoptionCurve`], and public gateway
//! operators (including one dominant "Cloudflare-like" operator running many
//! nodes behind a single name).

use ipfs_mon_node::{AdoptionCurve, GatewayOperator, NodeConfig, NodeSpec};
use ipfs_mon_simnet::churn::ChurnModel;
use ipfs_mon_simnet::region::CountryMix;
use ipfs_mon_simnet::rng::SimRng;
use ipfs_mon_simnet::time::SimDuration;
use ipfs_mon_types::Country;
use serde::{Deserialize, Serialize};

/// Configuration of one gateway operator to generate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OperatorConfig {
    /// DNS-style name.
    pub name: String,
    /// Number of IPFS nodes the operator runs.
    pub nodes: usize,
    /// Share of total gateway HTTP traffic this operator receives.
    pub traffic_share: f64,
    /// Whether the HTTP side works (the paper found broken gateways whose
    /// IPFS side still answered).
    pub http_functional: bool,
    /// Country the operator's nodes are deployed in.
    pub country: Country,
}

/// Configuration of the node population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of ordinary (non-gateway) nodes.
    pub nodes: usize,
    /// Fraction of ordinary nodes operating as DHT clients (NAT-ed), invisible
    /// to crawls.
    pub client_fraction: f64,
    /// Country mix for node placement.
    pub countries: CountryMix,
    /// Churn model for ordinary nodes.
    pub churn: ChurnModel,
    /// Protocol-upgrade adoption curve.
    pub adoption: AdoptionCurve,
    /// Connection-count range for ordinary nodes (the paper reports 600–900).
    pub connection_range: (u32, u32),
    /// Gateway operators to generate (their nodes are appended after the
    /// ordinary nodes and are always online).
    pub operators: Vec<OperatorConfig>,
}

impl PopulationConfig {
    /// A small default population, useful for tests and examples.
    pub fn small(nodes: usize) -> Self {
        Self {
            nodes,
            client_fraction: 0.55,
            countries: CountryMix::paper_table2(),
            churn: ChurnModel::default(),
            adoption: AdoptionCurve::fully_adopted(),
            connection_range: (600, 900),
            operators: vec![
                OperatorConfig {
                    name: "cloudgate.example".into(),
                    nodes: 13,
                    traffic_share: 0.75,
                    http_functional: true,
                    country: Country::Us,
                },
                OperatorConfig {
                    name: "gateway.example".into(),
                    nodes: 2,
                    traffic_share: 0.2,
                    http_functional: true,
                    country: Country::De,
                },
                OperatorConfig {
                    name: "broken.example".into(),
                    nodes: 1,
                    traffic_share: 0.05,
                    http_functional: false,
                    country: Country::Fr,
                },
            ],
        }
    }
}

/// The generated population: node specs plus operator descriptors whose
/// `node_indices` point into the node list.
#[derive(Debug, Clone)]
pub struct Population {
    /// All node specifications (ordinary nodes first, gateway nodes last).
    pub nodes: Vec<NodeSpec>,
    /// Gateway operators.
    pub operators: Vec<GatewayOperator>,
}

impl Population {
    /// Indices of all gateway nodes.
    pub fn gateway_indices(&self) -> Vec<usize> {
        self.operators
            .iter()
            .flat_map(|op| op.node_indices.iter().copied())
            .collect()
    }
}

/// Generates the population for a scenario of length `horizon`.
pub fn generate_population(
    config: &PopulationConfig,
    horizon: SimDuration,
    rng: &mut SimRng,
) -> Population {
    use rand::Rng;
    let mut nodes = Vec::with_capacity(config.nodes);
    for i in 0..config.nodes {
        let mut node_rng = rng.derive_indexed("node", i as u64);
        let is_client = node_rng.gen_bool(config.client_fraction.clamp(0.0, 1.0));
        let config_base = if is_client {
            NodeConfig::client()
        } else {
            NodeConfig::regular()
        };
        let (lo, hi) = config.connection_range;
        let connections = if hi > lo {
            node_rng.gen_range(lo..=hi)
        } else {
            lo
        };
        nodes.push(NodeSpec {
            config: NodeConfig {
                connection_target: connections,
                ..config_base
            },
            country: config.countries.sample(&mut node_rng),
            schedule: config.churn.schedule(&mut node_rng, horizon),
            upgrade: config.adoption.sample(&mut node_rng),
            connections,
        });
    }

    // Gateway nodes: stable, always online, high connection counts.
    let mut operators = Vec::with_capacity(config.operators.len());
    for (op_idx, op) in config.operators.iter().enumerate() {
        let mut indices = Vec::with_capacity(op.nodes);
        for g in 0..op.nodes {
            let mut node_rng = rng.derive_indexed("gateway", (op_idx * 1000 + g) as u64);
            let index = nodes.len();
            nodes.push(NodeSpec {
                config: NodeConfig::gateway(),
                country: op.country,
                schedule: ChurnModel::always_online().schedule(&mut node_rng, horizon),
                upgrade: config.adoption.sample(&mut node_rng),
                connections: 900,
            });
            indices.push(index);
        }
        operators.push(GatewayOperator {
            name: op.name.clone(),
            node_indices: indices,
            http_functional: op.http_functional,
            traffic_share: op.traffic_share,
        });
    }

    Population { nodes, operators }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipfs_mon_node::NodeRole;

    fn population(nodes: usize, seed: u64) -> Population {
        let config = PopulationConfig::small(nodes);
        let mut rng = SimRng::new(seed);
        generate_population(&config, SimDuration::from_days(7), &mut rng)
    }

    #[test]
    fn generates_nodes_plus_gateways() {
        let p = population(500, 1);
        // 13 + 2 + 1 gateway nodes appended after the 500 ordinary ones.
        assert_eq!(p.nodes.len(), 516);
        assert_eq!(p.operators.len(), 3);
        assert_eq!(p.gateway_indices().len(), 16);
        for &i in &p.gateway_indices() {
            assert_eq!(p.nodes[i].config.role, NodeRole::Gateway);
            assert!(p.nodes[i].schedule.stable, "gateways are always online");
        }
    }

    #[test]
    fn client_fraction_is_respected() {
        let p = population(2_000, 2);
        let clients = p.nodes[..2_000]
            .iter()
            .filter(|n| n.config.dht_mode.is_client())
            .count() as f64;
        let frac = clients / 2_000.0;
        assert!((frac - 0.55).abs() < 0.05, "client fraction {frac}");
    }

    #[test]
    fn connection_counts_in_configured_range() {
        let p = population(300, 3);
        for node in &p.nodes[..300] {
            assert!((600..=900).contains(&node.connections));
        }
    }

    #[test]
    fn country_mix_is_dominated_by_us() {
        let p = population(3_000, 4);
        let us = p.nodes[..3_000]
            .iter()
            .filter(|n| n.country == Country::Us)
            .count() as f64;
        let frac = us / 3_000.0;
        assert!((frac - 0.4565).abs() < 0.05, "US fraction {frac}");
    }

    #[test]
    fn operator_metadata_is_preserved() {
        let p = population(100, 5);
        assert_eq!(p.operators[0].node_count(), 13);
        assert!((p.operators[0].traffic_share - 0.75).abs() < 1e-12);
        assert!(!p.operators[2].http_functional);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = population(200, 9);
        let b = population(200, 9);
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.country, y.country);
            assert_eq!(x.connections, y.connections);
            assert_eq!(x.schedule.sessions.len(), y.schedule.sessions.len());
        }
    }
}
