//! Content-popularity models.
//!
//! The workload generator needs to decide *which* catalog item each request
//! asks for. The paper finds that the measured popularity distributions are
//! highly skewed (over 80 % of CIDs are requested by a single peer) but — per
//! the Clauset–Shalizi–Newman test — **not** power-law distributed. To let the
//! experiments reproduce both the skew and the non-power-law shape, this
//! module offers several weight models: Zipf, log-normal, and a mixture with a
//! flattened tail (the default, which the CSN test rejects as a power law just
//! like the paper's data).

use ipfs_mon_simnet::rng::SimRng;
use serde::{Deserialize, Serialize};

/// How popularity weights are assigned to catalog items.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PopularityModel {
    /// Zipf weights `1 / rank^s`.
    Zipf {
        /// Zipf exponent (1.0 is the classic harmonic profile).
        exponent: f64,
    },
    /// Log-normal weights: a few very popular items, a long body, no strict
    /// scale-freeness.
    LogNormal {
        /// `σ` of the underlying normal (larger = more skew).
        sigma: f64,
    },
    /// The default for reproducing the paper: a log-normal head combined with
    /// a large uniform-weight tail of barely requested items. Heavily skewed,
    /// rejected by the power-law test.
    SkewedMixture {
        /// Fraction of items in the popular (log-normal) head.
        head_fraction: f64,
        /// `σ` of the head's log-normal weights.
        sigma: f64,
    },
    /// All items equally popular (for control experiments).
    Uniform,
}

impl PopularityModel {
    /// The model used by the Fig. 5 reproduction.
    pub fn paper_default() -> Self {
        PopularityModel::SkewedMixture {
            head_fraction: 0.12,
            sigma: 1.8,
        }
    }
}

/// A sampler that picks catalog indices according to a popularity model.
#[derive(Debug, Clone)]
pub struct PopularitySampler {
    /// Cumulative weights for binary-search sampling.
    cumulative: Vec<f64>,
}

impl PopularitySampler {
    /// Builds a sampler over `items` catalog entries.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    pub fn new(model: PopularityModel, items: usize, rng: &mut SimRng) -> Self {
        assert!(items > 0, "catalog must not be empty");
        let mut weights = vec![0.0f64; items];
        match model {
            PopularityModel::Zipf { exponent } => {
                for (rank, w) in weights.iter_mut().enumerate() {
                    *w = 1.0 / ((rank + 1) as f64).powf(exponent);
                }
            }
            PopularityModel::LogNormal { sigma } => {
                for w in weights.iter_mut() {
                    *w = rng.sample_lognormal(0.0, sigma);
                }
            }
            PopularityModel::SkewedMixture {
                head_fraction,
                sigma,
            } => {
                let head = ((items as f64) * head_fraction.clamp(0.0, 1.0)).round() as usize;
                for (i, w) in weights.iter_mut().enumerate() {
                    if i < head.max(1) {
                        *w = rng.sample_lognormal(2.0, sigma);
                    } else {
                        // A flat, barely-requested tail: most CIDs end up with
                        // zero or one observed request.
                        *w = 0.05;
                    }
                }
            }
            PopularityModel::Uniform => {
                weights.iter_mut().for_each(|w| *w = 1.0);
            }
        }
        let mut cumulative = Vec::with_capacity(items);
        let mut acc = 0.0;
        for w in weights {
            acc += w.max(1e-12);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Number of catalog items covered.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns true if the sampler covers no items.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples one catalog index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        use rand::Rng;
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= target)
    }

    /// The normalized weight of item `index`.
    pub fn weight(&self, index: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if index == 0 {
            0.0
        } else {
            self.cumulative[index - 1]
        };
        (self.cumulative[index] - prev) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_counts(model: PopularityModel, items: usize, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = SimRng::new(seed);
        let sampler = PopularitySampler::new(model, items, &mut rng);
        let mut counts = vec![0u64; items];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let counts = request_counts(PopularityModel::Zipf { exponent: 1.0 }, 1000, 50_000, 1);
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999]);
        // Harmonic sum for 1000 items ≈ 7.49, so rank 1 gets ≈ 13 % of draws.
        let share = counts[0] as f64 / 50_000.0;
        assert!((share - 0.133).abs() < 0.02, "share {share}");
    }

    #[test]
    fn uniform_model_is_flat() {
        let counts = request_counts(PopularityModel::Uniform, 100, 100_000, 2);
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "min {min} max {max}");
    }

    #[test]
    fn skewed_mixture_is_heavily_skewed() {
        let counts = request_counts(PopularityModel::paper_default(), 5_000, 20_000, 3);
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = sorted.iter().take(500).sum();
        let total: u64 = sorted.iter().sum();
        assert!(
            top_decile as f64 / total as f64 > 0.5,
            "top 10% of items should receive most requests"
        );
        // Majority of items see at most one request — the paper's ">80% of
        // CIDs requested by one peer" regime.
        let rare = counts.iter().filter(|&&c| c <= 1).count();
        assert!(rare as f64 / counts.len() as f64 > 0.5, "rare {rare}");
    }

    #[test]
    fn weights_are_normalized() {
        let mut rng = SimRng::new(4);
        let sampler = PopularitySampler::new(PopularityModel::Zipf { exponent: 1.2 }, 50, &mut rng);
        let total: f64 = (0..50).map(|i| sampler.weight(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(sampler.weight(0) > sampler.weight(49));
    }

    #[test]
    fn sample_indices_in_range() {
        let mut rng = SimRng::new(5);
        let sampler =
            PopularitySampler::new(PopularityModel::LogNormal { sigma: 2.0 }, 37, &mut rng);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 37);
        }
    }

    #[test]
    #[should_panic(expected = "catalog must not be empty")]
    fn empty_catalog_panics() {
        let mut rng = SimRng::new(6);
        PopularitySampler::new(PopularityModel::Uniform, 0, &mut rng);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = request_counts(PopularityModel::paper_default(), 100, 1000, 7);
        let b = request_counts(PopularityModel::paper_default(), 100, 1000, 7);
        assert_eq!(a, b);
    }
}
