//! # ipfs-monitoring
//!
//! Workspace facade for the reproduction of *"Monitoring Data Requests in
//! Decentralized Data Storage Systems: A Case Study of IPFS"* (ICDCS 2022).
//!
//! The facade re-exports every workspace crate under a short module name so
//! that examples and downstream users can depend on a single crate:
//!
//! * [`types`] — peer IDs, CIDs, multihashes, multicodecs, multiaddrs,
//! * [`obs`] — the runtime observability layer: lock-free counters, gauges
//!   and log2 histograms, stage-timing spans, and the JSONL heartbeat
//!   reporter (`docs/OBSERVABILITY.md`); compile with `--features obs-off`
//!   to strip every probe,
//! * [`simnet`] — deterministic discrete-event simulation kernel,
//! * [`kad`] — Kademlia DHT substrate and the crawler baseline,
//! * [`bitswap`] — the Bitswap protocol engine and wire format,
//! * [`blockstore`] — blocks, Merkle DAGs and the local block cache,
//! * [`node`] — the full node/network model (scenarios, gateways, monitors'
//!   observation stream),
//! * [`workload`] — scenario/workload generation,
//! * [`analysis`] — statistics (ECDF, power-law tests, size estimators),
//! * [`tracestore`] — the trace data model plus append-only columnar segment
//!   storage: a sharded writer, per-monitor rotating segment chains under a
//!   manifest (thread-parallel ingestion), constant-memory streaming readers,
//!   and the `TraceSource` trait unifying in-memory and on-disk traces,
//! * [`core`] — the monitoring methodology itself: trace collection,
//!   preprocessing, analyses and privacy attacks.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use ipfs_mon_analysis as analysis;
pub use ipfs_mon_bitswap as bitswap;
pub use ipfs_mon_blockstore as blockstore;
pub use ipfs_mon_core as core;
pub use ipfs_mon_kad as kad;
pub use ipfs_mon_node as node;
pub use ipfs_mon_obs as obs;
pub use ipfs_mon_simnet as simnet;
pub use ipfs_mon_tracestore as tracestore;
pub use ipfs_mon_types as types;
pub use ipfs_mon_workload as workload;
