//! Offline stand-in for `criterion`.
//!
//! A minimal but functional benchmark harness exposing the API surface this
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical machinery
//! it runs a short warm-up, then reports the median iteration time.

use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies a benchmark within a group, typically by a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    median_ns: Option<f64>,
}

impl Bencher {
    /// Measures `routine`, recording the median iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that fits the
        // budget, then sample individual iteration times.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();

        let samples = if first >= MEASURE_BUDGET {
            vec![first]
        } else {
            let target =
                (MEASURE_BUDGET.as_nanos() / first.as_nanos().max(1)).clamp(3, 1_000) as usize;
            let mut samples = Vec::with_capacity(target);
            for _ in 0..target {
                let start = Instant::now();
                black_box(routine());
                samples.push(start.elapsed());
            }
            samples
        };
        let mut nanos: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
        nanos.sort_by(f64::total_cmp);
        self.median_ns = Some(nanos[nanos.len() / 2]);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(name, &mut f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// A named collection of parameterized benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
    }

    /// Runs one un-parameterized benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, &mut f);
    }

    /// Finishes the group (formatting no-op in the stub).
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { median_ns: None };
    f(&mut bencher);
    match bencher.median_ns {
        Some(ns) => println!("bench {label:<50} median {}", format_ns(ns)),
        None => println!("bench {label:<50} (no measurement: iter was not called)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default();
        c.bench_function("smoke/sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.bench_with_input(BenchmarkId::from_parameter(42u32), &42u32, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
