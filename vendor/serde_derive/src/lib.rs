//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` stub's `Content` data model. The parser is hand-rolled
//! over `proc_macro::TokenStream` (no `syn`/`quote` available offline) and
//! supports the shapes this workspace uses: non-generic structs with named
//! fields, tuple structs, unit structs, and enums with unit, tuple, and
//! struct variants. `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` (stub data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, kind) = parse_item(input);
    let body = match &kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::content::Content::Map(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!(
                "::serde::content::Content::Seq(::std::vec![{}])",
                items.join(", ")
            )
        }
        Kind::UnitStruct => "::serde::content::Content::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(&name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let output = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::content::Content {{ {body} }}\n\
         }}"
    );
    output.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (stub data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, kind) = parse_item(input);
    let body = match &kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::content::struct_field(entries, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let entries = content.as_map().ok_or_else(|| \
                 ::serde::DeError::msg(\"expected struct `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::content::tuple_elements(content, {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| deserialize_variant_arm(&name, v))
                .collect();
            format!(
                "let (variant, payload) = ::serde::content::enum_parts(content)?;\n\
                 match variant {{ {} _ => ::std::result::Result::Err(\
                 ::serde::DeError::msg(::std::format!(\
                 \"unknown variant `{{variant}}` of `{name}`\"))) }}",
                arms.join(" ")
            )
        }
    };
    let output = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::content::Content) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    output.parse().expect("generated Deserialize impl parses")
}

fn serialize_variant_arm(name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.shape {
        Shape::Unit => format!(
            "{name}::{vname} => ::serde::content::Content::Str(\
             ::std::string::String::from(\"{vname}\")),"
        ),
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_content(f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                    .collect();
                format!(
                    "::serde::content::Content::Seq(::std::vec![{}])",
                    items.join(", ")
                )
            };
            format!(
                "{name}::{vname}({}) => ::serde::content::Content::Map(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), {payload})]),",
                binds.join(", ")
            )
        }
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {} }} => ::serde::content::Content::Map(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                 ::serde::content::Content::Map(::std::vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn deserialize_variant_arm(name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.shape {
        Shape::Unit => format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"),
        Shape::Tuple(n) => {
            let payload = format!(
                "payload.ok_or_else(|| ::serde::DeError::msg(\
                 \"variant `{vname}` expects a payload\"))?"
            );
            if *n == 1 {
                format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_content({payload})?)),"
                )
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                    .collect();
                format!(
                    "\"{vname}\" => {{ let items = \
                     ::serde::content::tuple_elements({payload}, {n})?;\n\
                     ::std::result::Result::Ok({name}::{vname}({})) }},",
                    items.join(", ")
                )
            }
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::content::struct_field(entries, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "\"{vname}\" => {{ let entries = payload\
                 .and_then(|p| p.as_map())\
                 .ok_or_else(|| ::serde::DeError::msg(\
                 \"variant `{vname}` expects named fields\"))?;\n\
                 ::std::result::Result::Ok({name}::{vname} {{ {} }}) }},",
                inits.join(", ")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Kind) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = 0;
    skip_attributes_and_visibility(&tokens, &mut idx);

    let keyword = match &tokens[idx] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    idx += 1;
    let name = match &tokens[idx] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    idx += 1;
    if matches!(&tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (type `{name}`)");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(idx) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(idx) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(group.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    (name, kind)
}

/// Skips `#[...]` attributes (including doc comments) and a `pub` /
/// `pub(...)` visibility prefix.
fn skip_attributes_and_visibility(tokens: &[TokenTree], idx: &mut usize) {
    loop {
        match tokens.get(*idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *idx += 2; // `#` plus the `[...]` group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *idx += 1;
                if matches!(tokens.get(*idx), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *idx += 1;
                }
            }
            _ => return,
        }
    }
}

/// Advances past a type (or discriminant expression), stopping at a comma
/// outside all `<...>` nesting. Bracketed constructs (`[u8; N]`, tuples,
/// `fn(...)`) arrive as single groups, so only angle brackets need counting.
fn skip_to_field_end(tokens: &[TokenTree], idx: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*idx) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *idx += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut idx);
        let Some(TokenTree::Ident(ident)) = tokens.get(idx) else {
            break;
        };
        fields.push(ident.to_string());
        idx += 1; // field name
        idx += 1; // `:`
        skip_to_field_end(&tokens, &mut idx);
        idx += 1; // `,`
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut idx = 0;
    while idx < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut idx);
        if idx >= tokens.len() {
            break;
        }
        count += 1;
        skip_to_field_end(&tokens, &mut idx);
        idx += 1; // `,`
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut idx);
        let Some(TokenTree::Ident(ident)) = tokens.get(idx) else {
            break;
        };
        let name = ident.to_string();
        idx += 1;
        let shape = match tokens.get(idx) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                idx += 1;
                Shape::Named(parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                idx += 1;
                Shape::Tuple(count_tuple_fields(group.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_to_field_end(&tokens, &mut idx);
        idx += 1;
        variants.push(Variant { name, shape });
    }
    variants
}
