//! Offline stand-in for the `bytes` crate.
//!
//! The workspace is built in an environment without access to crates.io, so
//! the handful of external dependencies are vendored as minimal
//! re-implementations of exactly the API surface the workspace uses. This
//! crate covers [`BytesMut`] as a growable byte buffer plus the [`Buf`] /
//! [`BufMut`] cursor traits for `&[u8]` readers.

/// A growable byte buffer, backed by a plain `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns true if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read-cursor operations over a byte source. Implemented for `&[u8]`, where
/// consuming advances the slice in place.
pub trait Buf {
    /// Number of bytes remaining.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte and advances past it.
    fn get_u8(&mut self) -> u8;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let byte = self[0];
        *self = &self[1..];
        byte
    }
}

/// Write operations appending to a byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.inner.push(value);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_mut_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_slice(&[1, 2, 3]);
        assert_eq!(buf.to_vec(), vec![7, 1, 2, 3]);
        assert_eq!(buf.len(), 4);
        assert!(!buf.is_empty());
    }

    #[test]
    fn slice_cursor() {
        let data = [9u8, 8, 7, 6];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.get_u8(), 9);
        cursor.advance(2);
        assert_eq!(cursor.remaining(), 1);
        assert_eq!(cursor.get_u8(), 6);
        assert!(cursor.is_empty());
    }
}
