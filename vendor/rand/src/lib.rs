//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits and a deterministic
//! [`rngs::StdRng`]. The generator is xoshiro256** rather than ChaCha, so
//! streams differ from upstream rand, but every consumer in the workspace only
//! relies on determinism and statistical quality, not on exact streams.

/// Error type for fallible byte-filling (never produced by our generators).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed by expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain via `Rng::gen`.
pub trait Standard: Sized {
    /// Draws a uniformly distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample_standard(rng))
    }
}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable via `Rng::gen_range`. The element type is a trait
/// parameter (as in real rand) so that untyped literals like `200..1200`
/// infer their type from the call context.
pub trait SampleRange<T> {
    /// Draws a uniformly distributed value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` using rejection to avoid modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let offset = uniform_u64_below(rng, span);
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {

                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let offset = uniform_u64_below(rng, span + 1);
                    (start as i128 + offset as i128) as $t
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let u = unit_f64(rng.next_u64()) as $t;
                    let value = self.start + (self.end - self.start) * u;
                    // Guard against rounding up onto the exclusive bound.
                    if value < self.end { value } else { self.start }
                }
            }

            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let u = unit_f64(rng.next_u64()) as $t;
                    start + (end - start) * u
                }
            }
        )*
    };
}

impl_sample_range_float!(f32, f64);

/// Buffers fillable with random data via `Rng::fill`.
pub trait Fill {
    /// Overwrites `self` with random data.
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_with(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64, used to expand small seeds.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng, SplitMix64};

    /// The standard deterministic generator: xoshiro256** seeded from 32
    /// bytes. Not the same stream as upstream rand's ChaCha-based `StdRng`,
    /// but deterministic and of high statistical quality.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                let mut sm = SplitMix64(0x5eed);
                for word in &mut s {
                    *word = sm.next();
                }
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_probability_is_rough() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_array_and_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut arr = [0u8; 32];
        rng.fill(&mut arr);
        assert!(arr.iter().any(|&b| b != 0));
        let mut buf = [0u8; 9];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_full_domain() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
        let arr: [u8; 4] = rng.gen();
        assert_eq!(arr.len(), 4);
    }
}
