//! Offline stand-in for `serde`.
//!
//! The workspace builds without crates.io access, so this crate provides the
//! serialization framework the rest of the code expects: [`Serialize`] /
//! [`Deserialize`] traits plus `#[derive(Serialize, Deserialize)]` macros
//! (re-exported from the sibling `serde_derive` stub).
//!
//! Unlike real serde, the data model is a concrete tree, [`content::Content`]:
//! serializing builds a `Content`, deserializing reads one. Formats such as
//! the vendored `serde_json` translate between `Content` and text. This is
//! slower than real serde but API-compatible with the derive-plus-JSON usage
//! in this workspace, and entirely self-contained.

pub use serde_derive::{Deserialize, Serialize};

pub mod content;

use content::Content;

/// Error produced when a [`Content`] tree cannot be decoded into a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        DeError(message.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A value serializable into the [`Content`] data model.
pub trait Serialize {
    /// Converts the value to a content tree.
    fn to_content(&self) -> Content;
}

/// A value reconstructible from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds the value from a content tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_content(&self) -> Content {
                    Content::U64(*self as u64)
                }
            }

            impl Deserialize for $t {
                fn from_content(content: &Content) -> Result<Self, DeError> {
                    let value = content
                        .as_u64()
                        .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                    <$t>::try_from(value)
                        .map_err(|_| DeError::msg(concat!(stringify!($t), " out of range")))
                }
            }
        )*
    };
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_content(&self) -> Content {
                    Content::I64(*self as i64)
                }
            }

            impl Deserialize for $t {
                fn from_content(content: &Content) -> Result<Self, DeError> {
                    let value = content
                        .as_i64()
                        .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                    <$t>::try_from(value)
                        .map_err(|_| DeError::msg(concat!(stringify!($t), " out of range")))
                }
            }
        )*
    };
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content.as_f64().ok_or_else(|| DeError::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(value) => value.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(Box::new(T::from_content(content)?))
    }
}

// ---------------------------------------------------------------------------
// Sequences, arrays, tuples
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::msg("expected sequence")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let vec = Vec::<T>::from_content(content)?;
        vec.try_into()
            .map_err(|_| DeError::msg(format!("expected array of length {N}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident/$index:tt),+))*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn to_content(&self) -> Content {
                    Content::Seq(vec![$(self.$index.to_content()),+])
                }
            }

            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn from_content(content: &Content) -> Result<Self, DeError> {
                    match content {
                        Content::Seq(items) => {
                            let expected = [$($index,)+].len();
                            if items.len() != expected {
                                return Err(DeError::msg("tuple length mismatch"));
                            }
                            Ok(($($name::from_content(&items[$index])?,)+))
                        }
                        _ => Err(DeError::msg("expected tuple sequence")),
                    }
                }
            }
        )*
    };
}

impl_serde_tuple! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

// ---------------------------------------------------------------------------
// Maps and sets — serialized as sequences of entries so that non-string keys
// survive text formats.
// ---------------------------------------------------------------------------

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        map_entries(content)?.collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        map_entries(content)?.collect()
    }
}

/// Iterates the `[key, value]` entry pairs of a serialized map.
fn map_entries<'a, K: Deserialize, V: Deserialize>(
    content: &'a Content,
) -> Result<impl Iterator<Item = Result<(K, V), DeError>> + 'a, DeError> {
    match content {
        Content::Seq(items) => Ok(items.iter().map(|item| match item {
            Content::Seq(pair) if pair.len() == 2 => {
                Ok((K::from_content(&pair[0])?, V::from_content(&pair[1])?))
            }
            _ => Err(DeError::msg("expected [key, value] entry")),
        })),
        _ => Err(DeError::msg("expected map entry sequence")),
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::msg("expected sequence")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::from_content(&None::<u32>.to_content()).unwrap(),
            None
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_content(&v.to_content()).unwrap(), v);
        let arr = [9u64, 8];
        assert_eq!(<[u64; 2]>::from_content(&arr.to_content()).unwrap(), arr);
        let mut map = BTreeMap::new();
        map.insert(3u64, "x".to_string());
        assert_eq!(
            BTreeMap::<u64, String>::from_content(&map.to_content()).unwrap(),
            map
        );
        let tup = (1u8, true, 2.5f64);
        assert_eq!(
            <(u8, bool, f64)>::from_content(&tup.to_content()).unwrap(),
            tup
        );
    }
}
