//! The concrete data model values are serialized into.

use crate::DeError;

/// A serialized value: the stub equivalent of serde's data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Null / absent value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence of values.
    Seq(Vec<Content>),
    /// Map with string keys: struct fields and enum variant payloads.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Interprets the value as an unsigned integer if possible.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(v) => Some(*v),
            Content::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Interprets the value as a signed integer if possible.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(v) => Some(*v),
            Content::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// Interprets the value as a float if possible (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(v) => Some(*v),
            Content::U64(v) => Some(*v as f64),
            Content::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Interprets the value as a boolean if possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Interprets the value as a string if possible.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The map entries of a struct-shaped value.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

// `Content` is its own data model, so (de)serializing it is the identity:
// this is what lets callers decode arbitrary JSON they do not have a struct
// for (`serde_json::from_str::<Content>(..)`), mirroring `serde_json::Value`.
impl crate::Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl crate::Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

/// Looks up a struct field by name, for derived `Deserialize` impls.
pub fn struct_field<'a>(
    entries: &'a [(String, Content)],
    name: &str,
) -> Result<&'a Content, DeError> {
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .ok_or_else(|| DeError::msg(format!("missing field `{name}`")))
}

/// Decodes the `(variant name, payload)` of an enum-shaped value, for derived
/// `Deserialize` impls. Unit variants are encoded as bare strings and yield no
/// payload.
pub fn enum_parts(content: &Content) -> Result<(&str, Option<&Content>), DeError> {
    match content {
        Content::Str(name) => Ok((name, None)),
        Content::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        _ => Err(DeError::msg("expected enum variant")),
    }
}

/// The elements of a tuple-shaped payload with an exact arity, for derived
/// `Deserialize` impls of tuple structs and tuple variants.
pub fn tuple_elements(content: &Content, arity: usize) -> Result<&[Content], DeError> {
    match content {
        Content::Seq(items) if items.len() == arity => Ok(items),
        _ => Err(DeError::msg(format!("expected tuple of arity {arity}"))),
    }
}
