//! Offline stand-in for `serde_json`.
//!
//! Translates between JSON text and the vendored serde stub's
//! [`serde::content::Content`] data model. Supports exactly the API this
//! workspace uses: [`to_string`], [`from_str`], and the [`Result`] alias.
//!
//! Maps with non-string keys are represented as arrays of `[key, value]`
//! pairs by the serde stub, so everything the workspace serializes fits plain
//! JSON. Non-finite floats serialize as `null` (as real serde_json does for
//! formats that lack them... it errors; here traces never contain them).

use serde::content::Content;
use serde::{Deserialize, Serialize};

/// Error raised when encoding or decoding JSON fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Self {
        Error(err.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(T::from_content(&content)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(input).map_err(|_| Error::msg("invalid UTF-8"))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            out.push_str(&v.to_string());
        }
        Content::I64(v) => {
            out.push_str(&v.to_string());
        }
        Content::F64(v) => {
            if v.is_finite() {
                // `Display` for floats is shortest-round-trip in Rust, but
                // bare integral floats like `1` would re-parse as integers;
                // force a fractional point to keep the type through text.
                let text = v.to_string();
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(key, out);
                out.push(':');
                write_content(value, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        Some(byte)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                byte as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                _ => return Err(Error::msg("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(entries)),
                _ => return Err(Error::msg("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            self.eat_literal("\\u")?;
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((code - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                            char::from_u32(combined)
                                .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid unicode escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::msg("invalid escape sequence")),
                },
                Some(byte) if byte < 0x80 => out.push(byte as char),
                Some(byte) => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let len = match byte {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(Error::msg("invalid UTF-8 in string")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::msg("truncated UTF-8 in string"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let start = self.pos;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::msg("invalid unicode escape"))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(value) = text.parse::<u64>() {
                return Ok(Content::U64(value));
            }
            if let Ok(value) = text.parse::<i64>() {
                return Ok(Content::I64(value));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn strings_escape() {
        let original = "line\none \"two\" \\ three\ttab".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        let unicode = "héllo ✓ 𝄞".to_string();
        assert_eq!(
            from_str::<String>(&to_string(&unicode).unwrap()).unwrap(),
            unicode
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![vec![1u64, 2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u64>>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 , 3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }
}
