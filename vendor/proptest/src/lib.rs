//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro with `pat in strategy` and `pat: Type` parameters,
//! [`any`], integer/float range strategies, tuple strategies,
//! [`collection::vec`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed number
//! of random cases from a deterministic seed and reports the failing inputs
//! verbatim.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of random cases each property runs.
pub const CASES: usize = 128;

/// Number of random cases each property runs: the `PROPTEST_CASES`
/// environment variable when set to a positive integer (CI profiles use it
/// to trade coverage against wall-clock), otherwise [`CASES`].
pub fn cases() -> usize {
    cases_from(std::env::var("PROPTEST_CASES").ok().as_deref())
}

/// Parses a `PROPTEST_CASES`-style override, falling back to [`CASES`] on
/// absence, garbage, or zero.
pub fn cases_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(CASES)
}

/// Panic message used by [`prop_assume!`] to signal a discarded case.
pub const ASSUME_MARKER: &str = "__proptest_stub_assume_failed__";

/// Per-test driver: owns the RNG and the discard budget.
pub struct Runner {
    rng: StdRng,
}

impl Runner {
    /// Creates a runner with a seed derived from the test name, so separate
    /// properties explore different parts of the input space but every run of
    /// one property is deterministic.
    pub fn new(test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The random source for strategy generation.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Classifies a caught panic payload: discarded assumption vs. failure.
    pub fn panic_is_assume(payload: &(dyn std::any::Any + Send)) -> bool {
        if let Some(s) = payload.downcast_ref::<&str>() {
            return s.contains(ASSUME_MARKER);
        }
        if let Some(s) = payload.downcast_ref::<String>() {
            return s.contains(ASSUME_MARKER);
        }
        false
    }

    /// Extracts a human-readable message from a caught panic payload.
    pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic>".to_string()
        }
    }
}

/// Persisted failure cases, mirroring proptest's `proptest-regressions/`
/// directory: when a property fails, the deterministic attempt index that
/// produced the failing inputs is appended to
/// `<manifest dir>/proptest-regressions/<module>.txt`, and later runs replay
/// every recorded case before drawing fresh random ones. The files are
/// committed alongside the code so past failures stay covered.
///
/// Unlike real proptest the stub has no shrinking, so the recorded datum is
/// the 1-based attempt index into the property's deterministic RNG stream
/// rather than an explicit RNG seed; replaying regenerates the stream up to
/// that attempt. Lines are `cc <test name> <attempt>`; `#` lines and blanks
/// are ignored.
pub struct Regressions {
    path: std::path::PathBuf,
    test_name: String,
    attempts: Vec<u64>,
}

impl Regressions {
    /// Loads the recorded cases for `test_name` from the module's regression
    /// file, if present.
    pub fn load(manifest_dir: &str, module_path: &str, test_name: &str) -> Self {
        let file = format!("{}.txt", module_path.replace("::", "__"));
        let path = std::path::Path::new(manifest_dir)
            .join("proptest-regressions")
            .join(file);
        let mut attempts = Vec::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines() {
                let Some(rest) = line.trim().strip_prefix("cc ") else {
                    continue;
                };
                if let Some((name, attempt)) = rest.rsplit_once(' ') {
                    if name == test_name {
                        if let Ok(n) = attempt.parse() {
                            attempts.push(n);
                        }
                    }
                }
            }
        }
        Self {
            path,
            test_name: test_name.to_string(),
            attempts,
        }
    }

    /// The recorded attempt indices for this test, oldest first.
    pub fn attempts(&self) -> &[u64] {
        &self.attempts
    }

    /// Appends a failing attempt index, creating the file (with a format
    /// header) and directory on first use. Persistence failures are
    /// swallowed: the property panic itself already reports the inputs.
    pub fn record(&mut self, attempt: u64) {
        if self.attempts.contains(&attempt) {
            return;
        }
        self.attempts.push(attempt);
        use std::io::Write;
        if let Some(dir) = self.path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return;
            }
        }
        let fresh = !self.path.exists();
        let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        else {
            return;
        };
        if fresh {
            let _ = writeln!(
                file,
                "# Failure cases the proptest stub has generated in the past.\n\
                 # Each line is `cc <test name> <attempt>`: the 1-based attempt into\n\
                 # the property's deterministic stream that produced the failure.\n\
                 # Committed alongside the code so the cases replay on every run."
            );
        }
        let _ = writeln!(file, "cc {} {}", self.test_name, attempt);
    }
}

pub mod strategy {
    //! The [`Strategy`] trait: a recipe for generating random values.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut StdRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }

                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut StdRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// String strategies from a small regex subset: literal characters,
    /// character classes like `[a-z0-9]`, and the quantifiers `{m,n}`, `{n}`,
    /// `*`, `+`, `?` (unbounded repetition capped at 8).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            let chars: Vec<char> = self.chars().collect();
            let mut idx = 0;
            while idx < chars.len() {
                let alphabet: Vec<char> = if chars[idx] == '[' {
                    let close = chars[idx..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|o| idx + o)
                        .unwrap_or_else(|| panic!("unterminated class in regex {self:?}"));
                    let mut set = Vec::new();
                    let mut i = idx + 1;
                    while i < close {
                        if i + 2 < close && chars[i + 1] == '-' {
                            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    idx = close + 1;
                    set
                } else {
                    let c = chars[idx];
                    idx += 1;
                    vec![c]
                };
                // Optional quantifier after the atom.
                let (min, max) = match chars.get(idx) {
                    Some('{') => {
                        let close = chars[idx..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|o| idx + o)
                            .unwrap_or_else(|| panic!("unterminated quantifier in {self:?}"));
                        let body: String = chars[idx + 1..close].iter().collect();
                        idx = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.parse().expect("quantifier lower bound"),
                                hi.parse().expect("quantifier upper bound"),
                            ),
                            None => {
                                let n: usize = body.parse().expect("quantifier count");
                                (n, n)
                            }
                        }
                    }
                    Some('*') => {
                        idx += 1;
                        (0, 8)
                    }
                    Some('+') => {
                        idx += 1;
                        (1, 8)
                    }
                    Some('?') => {
                        idx += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                };
                let count = rng.gen_range(min..=max);
                for _ in 0..count {
                    out.push(alphabet[rng.gen_range(0..alphabet.len())]);
                }
            }
            out
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident/$index:tt),+))*) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);

                    fn generate(&self, rng: &mut StdRng) -> Self::Value {
                        ($(self.$index.generate(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }
}

pub mod arbitrary {
    //! Default strategies per type, used by [`crate::any`] and `pat: Type`
    //! parameters.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained random value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            })*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<f64>()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<f32>()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Biased towards ASCII, occasionally wider code points.
            if rng.gen_bool(0.9) {
                rng.gen_range(0x20u32..0x7f) as u8 as char
            } else {
                char::from_u32(rng.gen_range(0u32..0xd800)).unwrap_or('?')
            }
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut StdRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($name:ident),+))*) => {
            $(
                impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                    fn arbitrary(rng: &mut StdRng) -> Self {
                        ($($name::arbitrary(rng),)+)
                    }
                }
            )*
        };
    }

    impl_arbitrary_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: arbitrary::Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn` runs [`cases()`](cases) random cases,
/// after replaying any [`Regressions`] recorded for it.
///
/// Parameters are either `name in strategy` or `name: Type` (shorthand for
/// `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_impl!(@munch (stringify!($name)) [] {$body} $($params)*);
        }
        $crate::proptest!($($rest)*);
    };
}

/// Internal parameter-munching helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    // `name in strategy, rest...`
    (@munch ($name:expr) [$($acc:tt)*] $bodyb:tt $pat:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_impl!(@munch ($name) [$($acc)* ($pat, $strat)] $bodyb $($rest)*)
    };
    // `name in strategy` (final)
    (@munch ($name:expr) [$($acc:tt)*] $bodyb:tt $pat:ident in $strat:expr) => {
        $crate::__proptest_impl!(@run ($name) [$($acc)* ($pat, $strat)] $bodyb)
    };
    // `name: Type, rest...`
    (@munch ($name:expr) [$($acc:tt)*] $bodyb:tt $pat:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_impl!(@munch ($name) [$($acc)* ($pat, $crate::any::<$ty>())] $bodyb $($rest)*)
    };
    // `name: Type` (final)
    (@munch ($name:expr) [$($acc:tt)*] $bodyb:tt $pat:ident : $ty:ty) => {
        $crate::__proptest_impl!(@run ($name) [$($acc)* ($pat, $crate::any::<$ty>())] $bodyb)
    };
    // Trailing comma already consumed; nothing left.
    (@munch ($name:expr) [$($acc:tt)*] $bodyb:tt) => {
        $crate::__proptest_impl!(@run ($name) [$($acc)*] $bodyb)
    };
    (@run ($name:expr) [$(($pat:ident, $strat:expr))*] {$body:block}) => {{
        let __test_name = format!("{}::{}", module_path!(), $name);
        let mut __regressions =
            $crate::Regressions::load(env!("CARGO_MANIFEST_DIR"), module_path!(), &__test_name);
        // Replay recorded regression cases before drawing fresh random ones.
        // The RNG stream is deterministic, so regenerating `attempt` tuples
        // reproduces the historical inputs exactly.
        for &__attempt in __regressions.attempts() {
            let mut __runner =
                $crate::Runner::new(concat!(module_path!(), "::", stringify!($($pat),*)));
            let mut __tuple = None;
            for _ in 0..__attempt {
                __tuple = Some((
                    $($crate::strategy::Strategy::generate(&$strat, __runner.rng()),)*
                ));
            }
            if let Some(($($pat,)*)) = __tuple {
                let __case_desc = format!(
                    concat!("(", stringify!($($pat),*), ") = {:?}"),
                    ($(&$pat,)*)
                );
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                match __result {
                    Ok(()) => {}
                    Err(payload) if $crate::Runner::panic_is_assume(payload.as_ref()) => {}
                    Err(payload) => {
                        panic!(
                            "recorded regression case (attempt {}) failed with inputs {}: {}",
                            __attempt,
                            __case_desc,
                            $crate::Runner::panic_message(payload.as_ref())
                        );
                    }
                }
            }
        }
        let mut runner = $crate::Runner::new(concat!(module_path!(), "::", stringify!($($pat),*)));
        let __cases = $crate::cases();
        let mut ran = 0usize;
        let mut attempts = 0usize;
        while ran < __cases {
            attempts += 1;
            if attempts > __cases * 20 {
                panic!("proptest stub: too many discarded cases (prop_assume)");
            }
            $(let $pat = $crate::strategy::Strategy::generate(&$strat, runner.rng());)*
            let __case_desc = format!(
                concat!("(", stringify!($($pat),*), ") = {:?}"),
                ($(&$pat,)*)
            );
            let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                $body
            }));
            match __result {
                Ok(()) => { ran += 1; }
                Err(payload) if $crate::Runner::panic_is_assume(payload.as_ref()) => {}
                Err(payload) => {
                    __regressions.record(attempts as u64);
                    panic!(
                        "property failed after {} passing case(s) with inputs {}: {}",
                        ran,
                        __case_desc,
                        $crate::Runner::panic_message(payload.as_ref())
                    );
                }
            }
        }
    }};
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            panic!("{}", $crate::ASSUME_MARKER);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_params_generate(value: u64, flag: bool, bytes: [u8; 32]) {
            let _ = (value, flag);
            prop_assert_eq!(bytes.len(), 32);
        }

        #[test]
        fn strategy_params_respect_ranges(x in 10u64..20, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            items in crate::collection::vec((0u8..5, any::<bool>()), 0..10),
        ) {
            prop_assert!(items.len() < 10);
            for (n, _) in &items {
                prop_assert!(*n < 5);
            }
        }

        #[test]
        fn assume_discards(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::__proptest_impl!(
                @munch ("failing_property_panics_with_inputs") []
                {{ prop_assert!(false, "boom"); }} x in 0u64..5
            );
        });
        let message = crate::Runner::panic_message(result.unwrap_err().as_ref());
        assert!(message.contains("boom"), "{message}");
    }

    #[test]
    fn case_count_override_parses() {
        assert_eq!(crate::cases_from(None), crate::CASES);
        assert_eq!(crate::cases_from(Some("64")), 64);
        assert_eq!(crate::cases_from(Some(" 7 ")), 7);
        assert_eq!(crate::cases_from(Some("0")), crate::CASES);
        assert_eq!(crate::cases_from(Some("not-a-number")), crate::CASES);
    }

    #[test]
    fn regressions_roundtrip_and_dedupe() {
        let dir = std::env::temp_dir().join(format!("proptest-regr-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.to_str().unwrap();

        let mut fresh = crate::Regressions::load(manifest, "some::module", "some::module::prop_a");
        assert!(fresh.attempts().is_empty());
        fresh.record(17);
        fresh.record(17); // deduped
        fresh.record(3);

        let back = crate::Regressions::load(manifest, "some::module", "some::module::prop_a");
        assert_eq!(back.attempts(), &[17, 3]);
        // Other tests in the same module see only their own lines.
        let other = crate::Regressions::load(manifest, "some::module", "some::module::prop_b");
        assert!(other.attempts().is_empty());

        let text =
            std::fs::read_to_string(dir.join("proptest-regressions/some__module.txt")).unwrap();
        assert!(text.starts_with('#'), "header comment present: {text}");
        assert!(text.contains("cc some::module::prop_a 17"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
