//! Integration tests for the simulator event loop rewrite: timer-wheel
//! scheduling, lazy event sourcing, sharded handler execution, and their
//! bit-identity with the seed's fully materialized execution path.

use ipfs_monitoring::core::{GatewayProber, MonitorCollector};
use ipfs_monitoring::node::{ExecOptions, Network, RecordingSink, RequestEvent};
use ipfs_monitoring::simnet::rng::SimRng;
use ipfs_monitoring::simnet::time::{SimDuration, SimTime};
use ipfs_monitoring::simnet::{ChurnModel, NormalSampler};
use ipfs_monitoring::workload::{build_scenario, build_scenario_lazy};
use proptest::prelude::*;

mod common;
use common::scenario_config;

/// (a) Timer-wheel delivery on the full simulator is identical to the seed
/// heap scheduler, materialized and lazy alike, across seeds.
#[test]
fn execution_modes_agree_across_seeds() {
    for seed in [3, 17, 58] {
        let config = scenario_config(seed, 150);
        let monitor_count = config.monitors.len();
        let mut runs = Vec::new();
        for options in [
            ExecOptions::seed_baseline(),
            ExecOptions::materialized_wheel(),
            ExecOptions::lazy(),
        ] {
            let mut sink = RecordingSink::new(monitor_count);
            let report = Network::with_options(build_scenario(&config), options).run(&mut sink);
            runs.push((sink, report));
        }
        let (reference_sink, reference_report) = &runs[0];
        for (sink, report) in &runs[1..] {
            assert_eq!(
                sink.observations, reference_sink.observations,
                "seed {seed}"
            );
            assert_eq!(sink.connections, reference_sink.connections, "seed {seed}");
            assert_eq!(report.events_processed, reference_report.events_processed);
        }
    }
}

/// (b) Fully-lazy workload generation (no request vectors anywhere) yields a
/// byte-identical monitor trace to the pre-materialized scenario, across
/// seeds and churn models, including through the standard collector.
#[test]
fn lazy_generation_is_byte_identical_across_seeds_and_churn() {
    for (seed, always_online) in [(5u64, false), (6, true), (91, false)] {
        let mut config = scenario_config(seed, 120);
        if always_online {
            config.population.churn = ipfs_monitoring::simnet::ChurnModel::always_online();
        }
        let labels: Vec<String> = config.monitors.iter().map(|m| m.label.clone()).collect();

        let mut eager_collector = MonitorCollector::new(labels.clone());
        let eager_report = Network::new(build_scenario(&config)).run(&mut eager_collector);
        let eager_dataset = eager_collector.into_dataset();

        let (scenario, sources) = build_scenario_lazy(&config);
        assert!(scenario.requests.is_empty());
        assert!(scenario.gateway_requests.is_empty());
        let mut lazy_collector = MonitorCollector::new(labels);
        let lazy_report = Network::with_sources(scenario, sources).run(&mut lazy_collector);
        let lazy_dataset = lazy_collector.into_dataset();

        assert_eq!(eager_dataset.entries, lazy_dataset.entries, "seed {seed}");
        assert_eq!(
            eager_dataset.connections, lazy_dataset.connections,
            "seed {seed}"
        );
        assert_eq!(eager_report.events_processed, lazy_report.events_processed);
        // The serialized traces are byte-identical too.
        assert_eq!(
            eager_dataset.to_json().expect("encode"),
            lazy_dataset.to_json().expect("encode")
        );
    }
}

/// (b') Parallel regions — lazily generated sources partitioned onto worker
/// threads and advanced between synchronization barriers — are byte-identical
/// to serial lazy execution, for every region count from trivial to
/// more-regions-than-cores, with vector-backed and generated sources alike.
#[test]
fn parallel_regions_are_byte_identical_to_lazy_serial() {
    for seed in [12u64, 73] {
        let config = scenario_config(seed, 120);
        let monitor_count = config.monitors.len();

        let mut serial_sink = RecordingSink::new(monitor_count);
        let (scenario, sources) = build_scenario_lazy(&config);
        let serial_report = Network::with_sources(scenario, sources).run(&mut serial_sink);

        for regions in [2, 3, 8] {
            // Generated sources (the production path).
            let (scenario, sources) = build_scenario_lazy(&config);
            let mut sink = RecordingSink::new(monitor_count);
            let report = Network::with_sources_options(
                scenario,
                sources,
                ExecOptions::lazy_parallel(regions),
            )
            .run(&mut sink);
            assert_eq!(
                sink.observations, serial_sink.observations,
                "seed {seed}, {regions} regions"
            );
            assert_eq!(sink.connections, serial_sink.connections);
            assert_eq!(report.events_processed, serial_report.events_processed);
            assert_eq!(report.counters, serial_report.counters);

            // Vector-backed sources (scenario request vectors, no externals).
            let mut sink = RecordingSink::new(monitor_count);
            let report =
                Network::with_options(build_scenario(&config), ExecOptions::lazy_parallel(regions))
                    .run(&mut sink);
            assert_eq!(
                sink.observations, serial_sink.observations,
                "seed {seed}, {regions} regions, vector-backed"
            );
            assert_eq!(report.events_processed, serial_report.events_processed);
        }
    }
}

/// Lazy execution keeps the pending set proportional to live sources, not to
/// the number of scheduled events.
#[test]
fn lazy_pending_tracks_concurrency_not_horizon() {
    let config = scenario_config(33, 250);
    let materialized =
        Network::with_options(build_scenario(&config), ExecOptions::materialized_wheel())
            .run(&mut RecordingSink::new(config.monitors.len()));
    let lazy =
        Network::new(build_scenario(&config)).run(&mut RecordingSink::new(config.monitors.len()));
    assert_eq!(materialized.events_processed, lazy.events_processed);
    assert!(
        materialized.peak_pending > lazy.peak_pending * 4,
        "materialized {} vs lazy {}",
        materialized.peak_pending,
        lazy.peak_pending
    );
    assert!(
        (lazy.peak_pending as u64) < materialized.events_processed / 10,
        "lazy peak pending {} should be far below {} events",
        lazy.peak_pending,
        materialized.events_processed
    );
}

/// (c) Mid-run request injection — the gateway-probing attack tooling — works
/// identically in lazy mode: probes prepared against a lazy network land at
/// the same instants and discover the same peers as on the seed path.
#[test]
fn gateway_probing_injection_matches_seed_path_in_lazy_mode() {
    let run = |options: ExecOptions| {
        let config = scenario_config(44, 150);
        let mut network = Network::with_options(build_scenario(&config), options);
        let mut prober = GatewayProber::new();
        let mut rng = SimRng::new(9);
        prober.probe_all_operators(
            &mut network,
            0,
            SimTime::ZERO + SimDuration::from_hours(1),
            600,
            &mut rng,
        );
        let mut sink = RecordingSink::new(network.monitor_count());
        let report = network.run(&mut sink);
        let flat: Vec<_> = sink.observations.concat();
        let probe_hits: Vec<_> = prober
            .probes()
            .iter()
            .map(|p| flat.iter().filter(|o| o.cid == p.cid).count())
            .collect();
        (sink, report, probe_hits)
    };
    let (lazy_sink, lazy_report, lazy_hits) = run(ExecOptions::lazy());
    let (seed_sink, seed_report, seed_hits) = run(ExecOptions::seed_baseline());
    assert_eq!(lazy_sink.observations, seed_sink.observations);
    assert_eq!(lazy_report.events_processed, seed_report.events_processed);
    assert_eq!(lazy_hits, seed_hits);
    assert!(
        lazy_hits.iter().any(|&h| h > 0),
        "at least one probe must surface in the trace"
    );
    // The observation-offload sharded path sees the probes' injected requests
    // and runtime-added content identically.
    let (sharded_sink, sharded_report, sharded_hits) = run(ExecOptions::sharded(3));
    assert_eq!(sharded_sink.observations, seed_sink.observations);
    assert_eq!(
        sharded_report.events_processed,
        seed_report.events_processed
    );
    assert_eq!(sharded_hits, seed_hits);
}

/// (d) Sharded handler execution — the serial state half plus parallel
/// observation workers — is byte-identical to serial lazy execution across
/// seeds, churn models, and shard counts from trivial to odd/oversubscribed.
#[test]
fn sharded_handlers_are_byte_identical_across_churn_and_shard_counts() {
    for (seed, always_online) in [(5u64, false), (6, true), (91, false)] {
        let mut config = scenario_config(seed, 120);
        if always_online {
            config.population.churn = ChurnModel::always_online();
        }
        let monitor_count = config.monitors.len();

        let mut serial_sink = RecordingSink::new(monitor_count);
        let (scenario, sources) = build_scenario_lazy(&config);
        let serial_report = Network::with_sources(scenario, sources).run(&mut serial_sink);

        for shards in [1, 2, 7] {
            let (scenario, sources) = build_scenario_lazy(&config);
            let mut sink = RecordingSink::new(monitor_count);
            let report =
                Network::with_sources_options(scenario, sources, ExecOptions::sharded(shards))
                    .run(&mut sink);
            assert_eq!(
                sink.observations, serial_sink.observations,
                "seed {seed}, {shards} shards"
            );
            assert_eq!(sink.connections, serial_sink.connections);
            assert_eq!(report.events_processed, serial_report.events_processed);
            assert_eq!(report.counters, serial_report.counters);
        }
    }
}

/// (d') Requests injected into a built network through the runtime queue
/// interleave with source events under the same tie rule on the sharded path
/// as on the seed path, for every shard count.
#[test]
fn sharded_mode_interleaves_injected_requests_like_seed_path() {
    let run = |options: ExecOptions| {
        let config = scenario_config(58, 150);
        let mut network = Network::with_options(build_scenario(&config), options);
        network.schedule_request(RequestEvent {
            at: SimTime::ZERO + SimDuration::from_secs(3_600),
            node: 7,
            content: 0,
        });
        network.schedule_request(RequestEvent {
            at: SimTime::ZERO + SimDuration::from_hours(12),
            node: 11,
            content: 0,
        });
        let mut sink = RecordingSink::new(network.monitor_count());
        let report = network.run(&mut sink);
        (sink, report)
    };
    let (seed_sink, seed_report) = run(ExecOptions::seed_baseline());
    for shards in [1, 2, 7] {
        let (sharded_sink, sharded_report) = run(ExecOptions::sharded(shards));
        assert_eq!(
            sharded_sink.observations, seed_sink.observations,
            "{shards} shards"
        );
        assert_eq!(sharded_sink.connections, seed_sink.connections);
        assert_eq!(
            sharded_report.events_processed,
            seed_report.events_processed
        );
    }
}

proptest! {
    /// The ziggurat fast path draws from the same distribution as Box–Muller:
    /// over random seeds, the first two sample moments agree within sampling
    /// tolerance (the streams themselves intentionally differ).
    #[test]
    fn ziggurat_moments_match_box_muller(seed in 0u64..1_000_000) {
        let n = 40_000usize;
        let moments = |sampler: NormalSampler| {
            let mut rng = SimRng::new(seed).with_normal_sampler(sampler);
            let samples: Vec<f64> = (0..n).map(|_| rng.sample_standard_normal()).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            (mean, var)
        };
        let (bm_mean, bm_var) = moments(NormalSampler::BoxMuller);
        let (zig_mean, zig_var) = moments(NormalSampler::Ziggurat);
        prop_assert!((bm_mean - zig_mean).abs() < 0.05,
            "means diverge: box–muller {bm_mean}, ziggurat {zig_mean}");
        prop_assert!((bm_var - zig_var).abs() < 0.08,
            "variances diverge: box–muller {bm_var}, ziggurat {zig_var}");
    }
}
