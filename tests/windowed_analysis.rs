//! Property coverage for the continuous-monitoring building blocks:
//!
//! 1. **Windowed == offline batch** — slicing a stream through
//!    [`WindowedSink`](ipfs_monitoring::tracestore::WindowedSink) (serial
//!    or `run_parallel`) produces exactly the results of recomputing each
//!    window offline from the raw dataset, over random datasets, window
//!    shapes, rotation layouts, and out-of-order inter-monitor timestamps.
//! 2. **Sketch bounds** — [`SpaceSaving`] and
//!    [`CountMinSketch`](ipfs_monitoring::tracestore::CountMinSketch) stay
//!    within their analytical error bounds against exact counts, streaming
//!    and after partitioned merges.
//! 3. **Combine-order invariance** — merging sketch partials in any order
//!    (any worker completion order `run_parallel` could exhibit) finishes
//!    to the same output.

mod common;

use common::{random_dataset, temp_dir, write_manifest_rotated};
use ipfs_monitoring::core::{windowed_popularity, windowed_request_types, RequestTypeSink};
use ipfs_monitoring::simnet::time::SimDuration;
use ipfs_monitoring::tracestore::{
    run_sink, AnalysisSink, CountMinSink, CountMinSketch, LatePolicy, ManifestReader, SpaceSaving,
    SpaceSavingSink, TopK, WindowResult, WindowSpec,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A skewed key stream: quadratically biased towards small keys, so a few
/// heavy hitters rise above `total / capacity` while a long tail stays
/// below it.
fn skewed_stream(seed: u64, keys: u64, draws: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..draws)
        .map(|_| {
            let u: f64 = rng.gen();
            (((u * u) * keys as f64) as u64).min(keys - 1)
        })
        .collect()
}

/// A Fisher–Yates-shuffled permutation of `0..len`.
fn shuffled_order(len: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order
}

/// Asserts every documented Space-Saving guarantee of a finished report
/// against exact counts: overestimation, the error bracket, the error cap,
/// and heavy-hitter containment.
fn check_top_k<K: std::hash::Hash + Eq + Ord + std::fmt::Debug>(
    report: &TopK<K>,
    truth: &HashMap<K, u64>,
    total: u64,
    capacity: usize,
) {
    assert_eq!(report.total, total);
    let threshold = total / capacity as u64;
    for hh in &report.entries {
        let true_count = truth.get(&hh.key).copied().unwrap_or(0);
        assert!(
            hh.count >= true_count,
            "undercount: {:?} reported {} < true {true_count}",
            hh.key,
            hh.count
        );
        assert!(
            hh.count - hh.error <= true_count,
            "error bracket broken: {:?} count {} error {} true {true_count}",
            hh.key,
            hh.count,
            hh.error
        );
        assert!(
            hh.error <= threshold,
            "error {} above cap {threshold} for {:?}",
            hh.error,
            hh.key
        );
    }
    for (key, &count) in truth {
        if count > threshold {
            assert!(
                report.entries.iter().any(|hh| &hh.key == key),
                "heavy key {key:?} with count {count} (> {threshold}) missing"
            );
        }
    }
}

proptest! {
    /// Windowed analysis equals offline batch recomputation: for every
    /// sealed window, the output is exactly what a fresh accumulator
    /// produces over that window's slice of the raw dataset — under both
    /// the serial driver and `run_parallel`, across random datasets,
    /// tumbling and sliding specs, rotation boundaries, and out-of-order
    /// inter-monitor timestamps.
    #[test]
    fn windowed_results_equal_offline_batch_recomputation(
        seed in 0u64..1_000_000,
        monitors in 1usize..4,
        per_monitor in 1usize..80,
        jitter in 0u64..2_000,
        rotate in 5u64..60,
        chunk in 1usize..32,
        stride_s in 2u64..40,
        size_mult in 1u64..4,
    ) {
        let dataset = random_dataset(seed, monitors, per_monitor, jitter);
        let dir = temp_dir(&format!("win-prop-{seed}-{rotate}"));
        write_manifest_rotated(&dataset, &dir, rotate, chunk);
        let reader = ManifestReader::open(&dir).unwrap();

        let stride = SimDuration::from_secs(stride_s);
        let size = SimDuration::from_millis(stride.as_millis() * size_mult);
        let spec = WindowSpec::sliding(size, stride);
        let bucket = SimDuration::from_secs(5);
        let make = || {
            windowed_request_types(monitors, spec, SimDuration::ZERO, LatePolicy::Strict, bucket)
        };

        let serial = run_sink(&reader, make()).unwrap();
        let parallel = reader.run_parallel(make()).unwrap();
        prop_assert_eq!(&serial.results, &parallel.results);
        prop_assert_eq!(serial.late_dropped, 0);
        prop_assert_eq!(parallel.late_dropped, 0);

        // Offline reference: the raw entries in merged-stream order, a
        // fresh accumulator over each window's slice. Sliding windows see
        // an entry once per window containing it.
        let mut entries: Vec<_> = dataset.entries.iter().flatten().cloned().collect();
        entries.sort_by_key(|e| (e.timestamp, e.monitor));
        let last_window = entries
            .iter()
            .map(|e| *spec.windows_containing(e.timestamp).end())
            .max()
            .expect("dataset is non-empty");
        let mut expected = Vec::new();
        for index in 0..=last_window {
            let bounds = spec.bounds(index);
            let mut accum = RequestTypeSink::new(bucket);
            let mut count = 0u64;
            for entry in &entries {
                if entry.timestamp >= bounds.start && entry.timestamp < bounds.end {
                    accum.consume(entry.clone());
                    count += 1;
                }
            }
            expected.push(WindowResult { bounds, entries: count, output: accum.finish() });
        }
        prop_assert_eq!(serial.windows_sealed as usize, expected.len());
        prop_assert_eq!(&serial.results, &expected);

        // Rolling popularity rides the same machinery: both drivers agree.
        let make_pop =
            || windowed_popularity(monitors, spec, SimDuration::ZERO, LatePolicy::Strict);
        let serial_pop = run_sink(&reader, make_pop()).unwrap();
        let parallel_pop = reader.run_parallel(make_pop()).unwrap();
        prop_assert_eq!(&serial_pop.results, &parallel_pop.results);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Space-Saving stays within its analytical bounds against exact
    /// counts — streaming and after partitioned merges — and merging the
    /// partitions in any order finishes identically, permutations and
    /// association trees alike.
    #[test]
    fn space_saving_bounds_hold_under_any_merge_order(
        seed in 0u64..1_000_000,
        capacity in 2usize..24,
        keys in 1u64..200,
        draws in 1usize..2_500,
        parts in 1usize..5,
        shuffle_seed: u64,
    ) {
        let stream = skewed_stream(seed, keys, draws);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for key in &stream {
            *truth.entry(*key).or_insert(0) += 1;
        }

        let mut single = SpaceSaving::new(capacity);
        for key in &stream {
            single.record(key);
        }
        check_top_k(&single.finish(), &truth, draws as u64, capacity);

        // Round-robin partitions: any interleaving a parallel run could
        // deal out, merged in a shuffled completion order.
        let mut partitions: Vec<SpaceSaving<u64>> =
            (0..parts).map(|_| SpaceSaving::new(capacity)).collect();
        for (i, key) in stream.iter().enumerate() {
            partitions[i % parts].record(key);
        }
        let fold = |order: &[usize]| {
            let mut acc = partitions[order[0]].clone();
            for &i in &order[1..] {
                acc.merge(partitions[i].clone());
            }
            acc.finish()
        };
        let forward: Vec<usize> = (0..parts).collect();
        let reference = fold(&forward);
        let order = shuffled_order(parts, shuffle_seed);
        prop_assert_eq!(&reference, &fold(&order), "shuffled order {:?} diverges", &order);
        if parts >= 3 {
            // Association: (0+1) + (2+..) built as two subtrees.
            let mut left = partitions[0].clone();
            left.merge(partitions[1].clone());
            let mut right = partitions[2].clone();
            for part in &partitions[3..] {
                right.merge(part.clone());
            }
            left.merge(right);
            prop_assert_eq!(&reference, &left.finish(), "association tree diverges");
        }
        check_top_k(&reference, &truth, draws as u64, capacity);
    }

    /// Count-Min never undercounts, keeps (nearly) all estimates within
    /// the classical `e * total / width` bound, and partitioned merges
    /// reconstruct the single-stream sketch exactly in any order.
    #[test]
    fn count_min_bounds_hold_and_merge_is_exact(
        seed in 0u64..1_000_000,
        width in 16usize..128,
        depth in 3usize..7,
        keys in 1u64..300,
        draws in 1usize..3_000,
        parts in 1usize..5,
        shuffle_seed: u64,
    ) {
        let stream = skewed_stream(seed, keys, draws);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for key in &stream {
            *truth.entry(*key).or_insert(0) += 1;
        }

        let mut single = CountMinSketch::new(width, depth);
        for key in &stream {
            single.record(key);
        }
        prop_assert_eq!(single.total(), draws as u64);
        let bound = single.error_bound();
        let mut over_bound = 0usize;
        for (key, &count) in &truth {
            let estimate = single.estimate(key);
            prop_assert!(
                estimate >= count,
                "undercount: key {} estimated {estimate} < true {count}", key
            );
            if estimate > count + bound {
                over_bound += 1;
            }
        }
        // The bound fails per query with probability ~exp(-depth) <= 5%;
        // allow a wide (but still tail-excluding) margin over that.
        prop_assert!(
            over_bound <= truth.len() / 5 + 1,
            "{over_bound} of {} estimates above the analytical bound {bound}",
            truth.len()
        );

        // Element-wise merge: partitions rebuild the single-stream sketch
        // exactly, whatever the merge order.
        let mut partitions: Vec<CountMinSketch> =
            (0..parts).map(|_| CountMinSketch::new(width, depth)).collect();
        for (i, key) in stream.iter().enumerate() {
            partitions[i % parts].record(key);
        }
        for order in [
            (0..parts).collect::<Vec<usize>>(),
            shuffled_order(parts, shuffle_seed),
        ] {
            let mut acc = partitions[order[0]].clone();
            for &i in &order[1..] {
                acc.merge(partitions[i].clone());
            }
            prop_assert_eq!(&acc, &single, "merge order {:?} diverges", &order);
        }
    }

    /// The sketch sinks under `run_parallel` over real spilled traces:
    /// the parallel output equals a manual per-monitor fold combined in a
    /// shuffled completion order, Count-Min additionally equals the serial
    /// run exactly, and the Space-Saving reports bracket the dataset's
    /// exact per-CID/per-peer counts.
    #[test]
    fn sketch_sinks_are_order_invariant_under_run_parallel(
        seed in 0u64..1_000_000,
        monitors in 1usize..4,
        per_monitor in 1usize..120,
        jitter in 0u64..2_000,
        rotate in 5u64..60,
        chunk in 1usize..32,
        capacity in 2usize..16,
        shuffle_seed: u64,
    ) {
        let dataset = random_dataset(seed, monitors, per_monitor, jitter);
        let dir = temp_dir(&format!("sketch-drv-{seed}-{rotate}"));
        write_manifest_rotated(&dataset, &dir, rotate, chunk);
        let reader = ManifestReader::open(&dir).unwrap();
        let order = shuffled_order(monitors, shuffle_seed);

        // Space-Saving: parallel equals any combine order of the
        // per-monitor partials.
        let parallel = reader.run_parallel(SpaceSavingSink::new(capacity)).unwrap();
        let partials: Vec<SpaceSavingSink> = (0..monitors)
            .map(|m| {
                let mut sink = SpaceSavingSink::new(capacity);
                for entry in reader.stream_monitor_sorted(m) {
                    sink.consume(entry);
                }
                sink
            })
            .collect();
        let mut acc = partials[order[0]].clone();
        for &m in &order[1..] {
            acc.combine(partials[m].clone());
        }
        prop_assert_eq!(&parallel, &acc.finish(), "combine order {:?} diverges", &order);

        // ... and brackets the exact counts.
        let mut cid_truth = HashMap::new();
        let mut peer_truth = HashMap::new();
        let mut requests = 0u64;
        let mut total = 0u64;
        for entry in dataset.entries.iter().flatten() {
            if entry.is_request() {
                *cid_truth.entry(entry.cid.clone()).or_insert(0u64) += 1;
                requests += 1;
            }
            *peer_truth.entry(entry.peer).or_insert(0u64) += 1;
            total += 1;
        }
        check_top_k(&parallel.cids, &cid_truth, requests, capacity);
        check_top_k(&parallel.peers, &peer_truth, total, capacity);

        // Count-Min: parallel equals serial exactly (element-wise sums),
        // and never undercounts either key family.
        let serial = run_sink(&reader, CountMinSink::new(64, 4)).unwrap();
        let parallel_cm = reader.run_parallel(CountMinSink::new(64, 4)).unwrap();
        prop_assert_eq!(&serial, &parallel_cm);
        for (cid, &count) in &cid_truth {
            prop_assert!(serial.cids.estimate(cid) >= count);
        }
        for (peer, &count) in &peer_truth {
            prop_assert!(serial.peers.estimate(peer) >= count);
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}
