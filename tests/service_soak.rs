//! Kill/restart soak for [`MonitorService`]: crash the storage layer at
//! sampled operation indices, restart on the same directory, and assert
//! the service's output is *exactly-once* — the concatenation of WINDOW
//! lines across all incarnations, and the durable `windows/` directory
//! itself, are byte-identical to a fault-free run's.
//!
//! The harness mirrors the `monitor_service` bench binary: each
//! incarnation re-feeds the deterministic dataset minus what the previous
//! incarnation made durable, polls on a cadence deliberately misaligned
//! with the rotation/checkpoint cadences, and — when it dies — drains any
//! window files that committed durably before the crash but whose lines
//! never surfaced (window file bytes equal the line `poll` would have
//! returned, so the drain is a faithful replay).

mod common;

use common::{fresh_dir, random_dataset};
use ipfs_monitoring::core::{
    window_file_name, MonitorService, ServiceConfig, ServiceReport, WINDOW_DIR_NAME,
};
use ipfs_monitoring::simnet::time::SimDuration;
use ipfs_monitoring::tracestore::{
    DatasetConfig, FaultPlan, FaultyStorage, LatePolicy, MonitoringDataset, RealStorage,
    SegmentConfig, SegmentError, Storage, TraceSource, WindowSpec,
};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Poll cadence (entries between checkpoint+poll), chosen coprime to the
/// rotation and auto-checkpoint cadences below so crashes land in every
/// phase combination.
const POLL_EVERY: usize = 23;

fn config() -> ServiceConfig {
    ServiceConfig {
        dataset: DatasetConfig {
            segment: SegmentConfig {
                chunk_capacity: 8,
                ..SegmentConfig::default()
            },
            rotate_after_entries: 37,
            checkpoint_after_entries: 11,
        },
        window: WindowSpec::tumbling(SimDuration::from_secs(15)),
        // `random_dataset` can regress a monitor's timestamps by up to
        // 1 ms even at jitter 0; give the watermark comfortable slack so
        // `Strict` never trips.
        lateness: SimDuration::from_millis(2_000),
        policy: LatePolicy::Strict,
        top_k: 4,
    }
}

/// Runs one service incarnation over `dataset`, appending every surfaced
/// WINDOW line to `collected`. On failure, drains window files that
/// committed durably but were never surfaced — exactly what the bench
/// binary does when a run dies — so `collected` always equals the durable
/// window set at the incarnation boundary.
fn run_incarnation(
    dir: &Path,
    dataset: &MonitoringDataset,
    storage: Arc<dyn Storage>,
    collected: &mut Vec<String>,
) -> Result<ServiceReport, SegmentError> {
    let result = feed(dir, dataset, storage, collected);
    if result.is_err() {
        loop {
            let path = dir
                .join(WINDOW_DIR_NAME)
                .join(window_file_name(collected.len() as u64));
            match std::fs::read_to_string(&path) {
                Ok(line) => collected.push(line),
                Err(_) => break,
            }
        }
    }
    result
}

fn feed(
    dir: &Path,
    dataset: &MonitoringDataset,
    storage: Arc<dyn Storage>,
    collected: &mut Vec<String>,
) -> Result<ServiceReport, SegmentError> {
    let (mut service, recovery) =
        MonitorService::open_with(dir, dataset.monitor_labels.clone(), config(), storage)?;
    // Every durable window's line must already be in `collected` — this is
    // the invariant the death-drain above maintains; a violation here means
    // a line was lost or duplicated at the previous crash.
    assert_eq!(
        service.windows_durable_at_open(),
        collected.len() as u64,
        "durable windows at open must match lines collected so far"
    );
    let durable: Vec<u64> = if recovery.resume.is_empty() {
        vec![0; dataset.monitor_labels.len()]
    } else {
        recovery.resume.iter().map(|c| c.entries_durable).collect()
    };

    let mut fed = vec![0u64; dataset.monitor_labels.len()];
    let mut since_poll = 0usize;
    for entry in dataset.merged_entries() {
        let n = &mut fed[entry.monitor];
        *n += 1;
        if *n <= durable[entry.monitor] {
            continue; // already durable from the previous incarnation
        }
        service.ingest(&entry)?;
        since_poll += 1;
        if since_poll >= POLL_EVERY {
            since_poll = 0;
            service.checkpoint()?;
            collected.extend(service.poll()?);
        }
    }
    let report = service.finish()?;
    collected.extend(report.lines.iter().cloned());
    Ok(report)
}

/// Byte-exact snapshot of the durable `windows/` directory.
fn window_dir_snapshot(dir: &Path) -> BTreeMap<String, String> {
    let mut snapshot = BTreeMap::new();
    if let Ok(read) = std::fs::read_dir(dir.join(WINDOW_DIR_NAME)) {
        for entry in read.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read_to_string(entry.path()).expect("readable window file");
            snapshot.insert(name, bytes);
        }
    }
    snapshot
}

/// Fault-free reference run plus a storage-operation count for the same
/// workload (the count bounds the kill-point sweep).
fn reference(
    dataset: &MonitoringDataset,
    tag: &str,
) -> (Vec<String>, BTreeMap<String, String>, u64) {
    let ref_dir = fresh_dir(&format!("{tag}-ref"));
    let mut ref_lines = Vec::new();
    let report = run_incarnation(&ref_dir, dataset, Arc::new(RealStorage), &mut ref_lines)
        .expect("fault-free reference run");
    assert_eq!(report.windows_emitted as usize, ref_lines.len());
    assert_eq!(report.windows_skipped, 0);
    assert!(
        ref_lines.len() > 4,
        "want a multi-window reference, got {} windows",
        ref_lines.len()
    );
    let ref_windows = window_dir_snapshot(&ref_dir);
    assert_eq!(ref_windows.len(), ref_lines.len());
    std::fs::remove_dir_all(&ref_dir).ok();

    let counter = Arc::new(FaultyStorage::new(FaultPlan::none()));
    let count_dir = fresh_dir(&format!("{tag}-count"));
    let mut count_lines = Vec::new();
    run_incarnation(
        &count_dir,
        dataset,
        Arc::clone(&counter) as Arc<dyn Storage>,
        &mut count_lines,
    )
    .expect("operation-counting run");
    assert_eq!(count_lines, ref_lines, "counting run must match reference");
    std::fs::remove_dir_all(&count_dir).ok();
    let total_ops = counter.ops();
    assert!(
        total_ops > 50,
        "expected a substantial run, {total_ops} ops"
    );

    (ref_lines, ref_windows, total_ops)
}

#[test]
fn soak_kill_restart_at_sampled_ops_is_exactly_once() {
    let dataset = random_dataset(0x50AB, 3, 220, 0);
    let (ref_lines, ref_windows, total_ops) = reference(&dataset, "soak");

    // Sweep kill points across the whole operation range (0-based, so a
    // fault-free run uses ops 0..total_ops), plus the very first ops
    // (crash during directory/manifest creation) and the very last
    // (crash during `finish`).
    let step = (total_ops / 24).max(1);
    let mut kill_points: Vec<u64> = (0..total_ops).step_by(step as usize).collect();
    kill_points.extend([1, 2, total_ops - 2, total_ops - 1]);
    kill_points.sort_unstable();
    kill_points.dedup();

    for kill in kill_points {
        let dir = fresh_dir(&format!("soak-kill-{kill}"));
        let mut lines = Vec::new();

        let faulty = Arc::new(FaultyStorage::new(FaultPlan::crash_at(kill)));
        let died = run_incarnation(
            &dir,
            &dataset,
            Arc::clone(&faulty) as Arc<dyn Storage>,
            &mut lines,
        );
        assert!(
            died.is_err(),
            "kill at op {kill} must abort the incarnation"
        );
        assert!(
            faulty.crashed(),
            "kill at op {kill} must be the injected crash"
        );

        let report = run_incarnation(&dir, &dataset, Arc::new(RealStorage), &mut lines)
            .unwrap_or_else(|e| panic!("restart after kill at op {kill} failed: {e}"));
        assert_eq!(
            (report.windows_emitted + report.windows_skipped) as usize,
            ref_lines.len(),
            "kill at op {kill}: restart must account for every window"
        );
        assert_eq!(
            lines, ref_lines,
            "kill at op {kill}: concatenated WINDOW lines across incarnations diverged"
        );
        assert_eq!(
            window_dir_snapshot(&dir),
            ref_windows,
            "kill at op {kill}: durable window files diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn soak_cascading_kills_then_clean_restart_converges() {
    let dataset = random_dataset(0xCA5C, 2, 260, 0);
    let (ref_lines, ref_windows, total_ops) = reference(&dataset, "cascade");

    let dir = fresh_dir("soak-cascade");
    let mut lines = Vec::new();

    // First incarnation dies a third of the way in.
    let first = Arc::new(FaultyStorage::new(FaultPlan::crash_at(total_ops / 3)));
    let died = run_incarnation(
        &dir,
        &dataset,
        Arc::clone(&first) as Arc<dyn Storage>,
        &mut lines,
    );
    assert!(died.is_err() && first.crashed());

    // Second incarnation dies again mid-recovery-and-refeed (its op
    // sequence differs from the first run's, so this lands elsewhere). If
    // the kill point exceeds the ops the shorter resumed run needs, the
    // incarnation simply completes — also a valid cascade step.
    let second = Arc::new(FaultyStorage::new(FaultPlan::crash_at(total_ops / 2)));
    let second_run = run_incarnation(
        &dir,
        &dataset,
        Arc::clone(&second) as Arc<dyn Storage>,
        &mut lines,
    );
    assert_eq!(second_run.is_err(), second.crashed());

    // Final clean incarnation converges to the reference exactly.
    let report = run_incarnation(&dir, &dataset, Arc::new(RealStorage), &mut lines)
        .expect("clean restart after cascading kills");
    assert_eq!(
        (report.windows_emitted + report.windows_skipped) as usize,
        ref_lines.len()
    );
    assert_eq!(lines, ref_lines, "cascade: WINDOW lines diverged");
    assert_eq!(
        window_dir_snapshot(&dir),
        ref_windows,
        "cascade: window files diverged"
    );
    std::fs::remove_dir_all(&dir).ok();
}
