//! Tracestore integration coverage.
//!
//! Property tests proving that arbitrary datasets round-trip losslessly
//! through columnar segments, that the streaming preprocessing path yields
//! flags bit-identical to the in-memory `unify_and_flag`, and that damage to
//! a segment is detected rather than decoded.

use ipfs_monitoring::bitswap::RequestType;
use ipfs_monitoring::core::{
    popularity_scores, popularity_scores_stream, unify_and_flag, unify_and_flag_segment,
    MonitorCollector, PreprocessConfig, SpillingCollector,
};
use ipfs_monitoring::node::Network;
use ipfs_monitoring::simnet::time::{SimDuration, SimTime};
use ipfs_monitoring::tracestore::{
    ConnectionRecord, EntryFlags, FileSource, MonitoringDataset, SegmentConfig, SegmentError,
    SliceSource, TraceEntry, TraceReader, TraceWriter,
};
use ipfs_monitoring::types::{Cid, Country, Multiaddr, Multicodec, PeerId, Transport};
use ipfs_monitoring::workload::{build_scenario, ScenarioConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a dataset with interleaved duplicates/re-broadcasts and bounded
/// per-monitor arrival disorder (`jitter_ms`), the delivery pattern a real
/// monitor produces and the hardest case for the k-way merged reader.
fn random_dataset(
    seed: u64,
    monitors: usize,
    per_monitor: usize,
    jitter_ms: u64,
) -> MonitoringDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let countries = [Country::Us, Country::De, Country::Nl, Country::Fr];
    let transports = [Transport::Tcp, Transport::Quic, Transport::WebSocket];
    let types = [
        RequestType::WantHave,
        RequestType::WantBlock,
        RequestType::Cancel,
    ];
    let mut dataset = MonitoringDataset::new((0..monitors).map(|m| format!("m{m}")).collect());
    for monitor in 0..monitors {
        let mut clock: u64 = 0;
        for _ in 0..per_monitor {
            clock += rng.gen_range(0u64..2_000);
            // Arrival order differs from timestamp order by up to the jitter.
            let timestamp = clock.saturating_sub(rng.gen_range(0u64..=jitter_ms.max(1)));
            dataset.entries[monitor].push(TraceEntry {
                timestamp: SimTime::from_millis(timestamp),
                peer: PeerId::derived(11, rng.gen_range(0u64..16)),
                address: Multiaddr::new(
                    rng.gen::<u32>(),
                    4001,
                    transports[rng.gen_range(0usize..transports.len())],
                    countries[rng.gen_range(0usize..countries.len())],
                ),
                request_type: types[rng.gen_range(0usize..types.len())],
                cid: Cid::new_v1(Multicodec::Raw, &[rng.gen_range(0u8..32)]),
                monitor,
                flags: EntryFlags::default(),
            });
        }
    }
    for _ in 0..rng.gen_range(0usize..8) {
        let connected_at = rng.gen_range(0u64..100_000);
        dataset.connections.push(ConnectionRecord {
            monitor: rng.gen_range(0usize..monitors),
            peer: PeerId::derived(11, rng.gen_range(0u64..16)),
            address: Multiaddr::new(rng.gen::<u32>(), 4001, Transport::Tcp, Country::Us),
            connected_at: SimTime::from_millis(connected_at),
            disconnected_at: rng
                .gen_bool(0.5)
                .then(|| SimTime::from_millis(connected_at + rng.gen_range(0u64..50_000))),
        });
    }
    dataset
}

proptest! {
    #[test]
    fn segment_roundtrip_is_lossless(
        seed in 0u64..1_000_000,
        monitors in 1usize..5,
        per_monitor in 0usize..300,
        jitter in 0u64..1_500,
    ) {
        let dataset = random_dataset(seed, monitors, per_monitor, jitter);
        let bytes = dataset
            .to_segment_bytes(SegmentConfig { chunk_capacity: 64 , ..SegmentConfig::default() })
            .unwrap();
        let back = MonitoringDataset::from_segment_bytes(&bytes).unwrap();
        prop_assert_eq!(&back.monitor_labels, &dataset.monitor_labels);
        prop_assert_eq!(&back.entries, &dataset.entries);
        prop_assert_eq!(&back.connections, &dataset.connections);
    }

    #[test]
    fn streaming_preprocessing_matches_in_memory(
        seed in 0u64..1_000_000,
        monitors in 1usize..4,
        per_monitor in 1usize..300,
        jitter in 0u64..3_000,
    ) {
        let dataset = random_dataset(seed, monitors, per_monitor, jitter);
        let (trace, stats) = unify_and_flag(&dataset, PreprocessConfig::default());

        let bytes = dataset
            .to_segment_bytes(SegmentConfig { chunk_capacity: 32 , ..SegmentConfig::default() })
            .unwrap();
        let reader = TraceReader::new(SliceSource::new(&bytes)).unwrap();
        let (streamed, streamed_stats) =
            unify_and_flag_segment(&reader, PreprocessConfig::default()).unwrap();

        prop_assert_eq!(&streamed.entries, &trace.entries);
        prop_assert_eq!(streamed_stats, stats);
    }

    #[test]
    fn chunk_capacity_does_not_change_contents(
        seed in 0u64..1_000_000,
        capacity in 1usize..200,
    ) {
        let dataset = random_dataset(seed, 2, 150, 500);
        let bytes = dataset
            .to_segment_bytes(SegmentConfig { chunk_capacity: capacity , ..SegmentConfig::default() })
            .unwrap();
        let back = MonitoringDataset::from_segment_bytes(&bytes).unwrap();
        prop_assert_eq!(&back.entries, &dataset.entries);
    }
}

#[test]
fn empty_dataset_roundtrips() {
    let dataset = MonitoringDataset::new(vec!["us".into(), "de".into()]);
    let bytes = dataset.to_segment_bytes(SegmentConfig::default()).unwrap();
    let back = MonitoringDataset::from_segment_bytes(&bytes).unwrap();
    assert_eq!(back.monitor_labels, dataset.monitor_labels);
    assert!(back.entries.iter().all(Vec::is_empty));
    assert!(back.connections.is_empty());
}

#[test]
fn file_backed_segment_roundtrips() {
    let dataset = random_dataset(42, 3, 200, 800);
    let path =
        std::env::temp_dir().join(format!("tracestore_roundtrip_{}.seg", std::process::id()));

    let file = std::fs::File::create(&path).unwrap();
    let mut writer = TraceWriter::new(
        file,
        dataset.monitor_labels.clone(),
        SegmentConfig {
            chunk_capacity: 128,
            ..SegmentConfig::default()
        },
    )
    .unwrap();
    // Interleave monitors the way a shared collector would.
    let mut cursors: Vec<_> = dataset.entries.iter().map(|v| v.iter()).collect();
    let mut remaining = true;
    while remaining {
        remaining = false;
        for cursor in &mut cursors {
            if let Some(entry) = cursor.next() {
                writer.append(entry).unwrap();
                remaining = true;
            }
        }
    }
    for connection in &dataset.connections {
        writer.record_connection(connection.clone());
    }
    let summary = writer.finish().unwrap();
    assert_eq!(summary.total_entries as usize, dataset.total_entries());

    let reader = TraceReader::new(FileSource::open(&path).unwrap()).unwrap();
    let back = reader.to_dataset().unwrap();
    assert_eq!(back.entries, dataset.entries);
    assert_eq!(back.connections, dataset.connections);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_chunk_is_detected() {
    let dataset = random_dataset(7, 2, 120, 0);
    let mut bytes = dataset
        .to_segment_bytes(SegmentConfig {
            chunk_capacity: 64,
            ..SegmentConfig::default()
        })
        .unwrap();

    let reader = TraceReader::new(SliceSource::new(&bytes)).unwrap();
    let chunk = reader.chunks()[0];
    drop(reader);
    // Flip one payload byte past the frame's length prefix.
    let victim = chunk.offset as usize + chunk.len as usize / 2;
    bytes[victim] ^= 0xff;

    match MonitoringDataset::from_segment_bytes(&bytes) {
        Err(SegmentError::ChecksumMismatch { .. }) | Err(SegmentError::Corrupt(_)) => {}
        other => panic!("corruption not detected: {other:?}"),
    }

    // The streaming preprocessing path surfaces the same damage instead of
    // silently analyzing a truncated trace.
    let reader = TraceReader::new(SliceSource::new(&bytes)).unwrap();
    assert!(unify_and_flag_segment(&reader, PreprocessConfig::default()).is_err());
}

#[test]
fn truncated_segment_is_rejected() {
    let dataset = random_dataset(8, 1, 50, 0);
    let bytes = dataset.to_segment_bytes(SegmentConfig::default()).unwrap();
    assert!(TraceReader::new(SliceSource::new(&bytes[..bytes.len() - 9])).is_err());
}

/// End-to-end: the same simulated scenario collected by the in-memory
/// collector and by the spill-to-segment collector must yield identical
/// entries, identical preprocessing flags, and identical downstream analysis
/// — with real monitor delivery jitter, not synthetic data.
#[test]
fn scenario_spill_matches_in_memory_pipeline() {
    let mut config = ScenarioConfig::small_test(777);
    config.horizon = SimDuration::from_hours(2);

    let mut in_memory = MonitorCollector::us_de();
    Network::new(build_scenario(&config)).run(&mut in_memory);
    let dataset = in_memory.into_dataset();
    assert!(dataset.total_entries() > 0);

    let mut bytes = Vec::new();
    let mut spilling = SpillingCollector::us_de(
        &mut bytes,
        SegmentConfig {
            chunk_capacity: 256,
            ..SegmentConfig::default()
        },
    )
    .unwrap();
    Network::new(build_scenario(&config)).run(&mut spilling);
    spilling.finish().unwrap();

    // Spilling is deterministic: an identical run yields identical bytes.
    let mut bytes_again = Vec::new();
    let mut spilling = SpillingCollector::us_de(
        &mut bytes_again,
        SegmentConfig {
            chunk_capacity: 256,
            ..SegmentConfig::default()
        },
    )
    .unwrap();
    Network::new(build_scenario(&config)).run(&mut spilling);
    spilling.finish().unwrap();
    assert_eq!(bytes, bytes_again);

    let reader = TraceReader::new(SliceSource::new(&bytes)).unwrap();
    assert_eq!(reader.total_entries() as usize, dataset.total_entries());

    let (trace, stats) = unify_and_flag(&dataset, PreprocessConfig::default());
    let (streamed, streamed_stats) =
        unify_and_flag_segment(&reader, PreprocessConfig::default()).unwrap();
    assert_eq!(streamed.entries, trace.entries);
    assert_eq!(streamed_stats, stats);

    // A representative analysis agrees between the two paths as well.
    let in_memory_scores = popularity_scores(&trace);
    let streamed_scores = popularity_scores_stream(streamed.entries.iter().cloned());
    assert_eq!(streamed_scores.cid_count(), in_memory_scores.cid_count());
}

/// Every streaming analysis variant must agree with its in-memory
/// counterpart when fed the same segment-backed stream.
#[test]
fn streaming_analysis_variants_match_in_memory() {
    use ipfs_monitoring::analysis::{summarize, summarize_stream, Ecdf};
    use ipfs_monitoring::core::{
        flag_segment, per_peer_request_counts, per_peer_request_counts_stream, request_type_series,
        request_type_series_stream,
    };

    let dataset = random_dataset(99, 2, 400, 1_000);
    let (trace, _) = unify_and_flag(&dataset, PreprocessConfig::default());
    let bytes = dataset
        .to_segment_bytes(SegmentConfig {
            chunk_capacity: 64,
            ..SegmentConfig::default()
        })
        .unwrap();
    let reader = TraceReader::new(SliceSource::new(&bytes)).unwrap();

    // Per-peer request counts over the flagged stream.
    let in_memory = per_peer_request_counts(&trace);
    let streamed =
        per_peer_request_counts_stream(flag_segment(&reader, PreprocessConfig::default()));
    assert!(!in_memory.is_empty());
    assert_eq!(streamed, in_memory);

    // Fig. 4 request-type series from one monitor's raw stream.
    let bucket = SimDuration::from_secs(60);
    let in_memory_series = request_type_series(&dataset, 0, bucket);
    let streamed_series = request_type_series_stream(reader.stream_monitor(0), bucket);
    assert_eq!(streamed_series.rows, in_memory_series.rows);

    // Descriptive summary and ECDF over the per-peer counts as a sample.
    let samples: Vec<f64> = in_memory.iter().map(|(_, count)| *count as f64).collect();
    let batch = summarize(&samples).unwrap();
    let stream = summarize_stream(samples.iter().copied()).unwrap();
    assert_eq!(stream.count, batch.count);
    assert_eq!(stream.min, batch.min);
    assert_eq!(stream.max, batch.max);
    assert!((stream.mean - batch.mean).abs() < 1e-9);
    assert!((stream.std_dev - batch.std_dev).abs() < 1e-9);

    // Documented divergence: the streaming summary skips NaN samples.
    let with_nan = [1.0, f64::NAN, 3.0];
    let skipped = summarize_stream(with_nan.iter().copied()).unwrap();
    assert_eq!(skipped.count, 2);
    assert_eq!((skipped.min, skipped.max), (1.0, 3.0));

    let ecdf_batch = Ecdf::new(samples.clone());
    let ecdf_stream = Ecdf::from_samples(samples.iter().copied());
    assert_eq!(ecdf_stream.len(), ecdf_batch.len());
    for q in [0.1, 0.5, 0.9] {
        assert_eq!(ecdf_stream.quantile(q), ecdf_batch.quantile(q));
    }
}
