//! End-to-end integration: scenario generation → network simulation → passive
//! monitoring → preprocessing → the paper's analyses.

use ipfs_monitoring::core::{
    country_shares, estimate_network_size, multicodec_shares, popularity_scores,
    request_type_series, unify_and_flag, MonitorCollector, PreprocessConfig,
};
use ipfs_monitoring::node::Network;
use ipfs_monitoring::simnet::time::{SimDuration, SimTime};
use ipfs_monitoring::types::{Country, Multicodec};
use ipfs_monitoring::workload::{build_scenario, ScenarioConfig};

struct Pipeline {
    network: Network,
    dataset: ipfs_monitoring::core::MonitoringDataset,
    trace: ipfs_monitoring::core::UnifiedTrace,
    stats: ipfs_monitoring::core::PreprocessStats,
}

fn run_pipeline(seed: u64, nodes: usize, days: u64) -> Pipeline {
    let mut config = ScenarioConfig::analysis_week(seed, nodes);
    config.horizon = SimDuration::from_days(days);
    config.workload.mean_node_requests_per_hour = 1.0;
    let scenario = build_scenario(&config);
    assert!(scenario.validate().is_empty());
    let mut network = Network::new(scenario);
    let mut collector = MonitorCollector::us_de();
    network.run(&mut collector);
    let dataset = collector.into_dataset();
    let (trace, stats) = unify_and_flag(&dataset, PreprocessConfig::default());
    Pipeline {
        network,
        dataset,
        trace,
        stats,
    }
}

#[test]
fn monitors_observe_traffic_and_preprocessing_flags_repeats() {
    let p = run_pipeline(900, 400, 1);
    assert!(
        p.dataset.total_entries() > 500,
        "monitors saw substantial traffic"
    );
    assert_eq!(p.trace.len(), p.dataset.total_entries());
    assert_eq!(
        p.stats.total,
        p.stats.primary + (p.trace.len() - p.trace.primary_entries().count())
    );
    // Two monitors with high attach probability → plenty of inter-monitor
    // duplicates; unresolvable content → re-broadcasts.
    assert!(p.stats.inter_monitor_duplicates > 0);
    assert!(p.stats.rebroadcasts > 0);
    assert!(p.stats.primary > 0);
}

#[test]
fn network_size_estimates_track_online_population() {
    let p = run_pipeline(901, 800, 2);
    let probe = SimTime::ZERO + SimDuration::from_hours(30);
    let report = estimate_network_size(
        &p.dataset,
        probe,
        probe + SimDuration::from_hours(8),
        SimDuration::from_hours(4),
    );
    let online_truth = p
        .network
        .scenario()
        .nodes
        .iter()
        .filter(|n| n.schedule.online_at(probe))
        .count() as f64;
    let estimate = report
        .capture_recapture
        .expect("two monitors produce an estimate")
        .mean;
    // The estimator targets the currently-online population; allow generous
    // tolerance because the peer sets are modest samples.
    assert!(
        (estimate - online_truth).abs() / online_truth < 0.35,
        "estimate {estimate} vs online ground truth {online_truth}"
    );
    // Weekly unique counts exceed any instantaneous peer-set size (churn).
    assert!(report.weekly_unique_union as f64 > estimate * 0.9);
}

#[test]
fn activity_analyses_reproduce_expected_structure() {
    let p = run_pipeline(902, 500, 1);

    // Table I shape: DagProtobuf and Raw dominate, DagProtobuf first.
    let codecs = multicodec_shares(&p.dataset);
    assert!(!codecs.is_empty());
    assert_eq!(codecs[0].0, Multicodec::DagProtobuf);
    let file_share: f64 = codecs
        .iter()
        .filter(|(c, _, _)| matches!(c, Multicodec::DagProtobuf | Multicodec::Raw))
        .map(|(_, _, s)| s)
        .sum();
    assert!(file_share > 0.9, "file codecs dominate: {file_share}");

    // Table II shape: US is the top origin country.
    let countries = country_shares(
        &p.trace,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_days(1),
    );
    assert!(!countries.is_empty());
    assert_eq!(countries[0].0, Country::Us);
    assert!(countries[0].2 > 0.25 && countries[0].2 < 0.75);

    // Fig. 4 shape with a fully-adopted population: WANT_HAVE only.
    let series = request_type_series(&p.dataset, 0, SimDuration::from_hours(6));
    let total_have: u64 = series.rows.iter().map(|r| r.1).sum();
    let total_block: u64 = series.rows.iter().map(|r| r.2).sum();
    assert!(total_have > 0);
    assert_eq!(
        total_block, 0,
        "fully adopted population sends no WANT_BLOCK"
    );
}

#[test]
fn popularity_is_heavily_skewed() {
    let p = run_pipeline(903, 500, 1);
    let scores = popularity_scores(&p.trace);
    assert!(scores.cid_count() > 50);
    assert!(
        scores.single_requester_fraction() > 0.4,
        "most CIDs have a single requester: {}",
        scores.single_requester_fraction()
    );
    // RRP >= URP for every CID.
    for (cid, rrp) in &scores.rrp {
        assert!(*rrp >= scores.urp[cid]);
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = run_pipeline(904, 200, 1);
    let b = run_pipeline(904, 200, 1);
    assert_eq!(a.dataset.total_entries(), b.dataset.total_entries());
    assert_eq!(a.trace.entries, b.trace.entries);
    let c = run_pipeline(905, 200, 1);
    assert_ne!(a.dataset.total_entries(), c.dataset.total_entries());
}
