//! Crash-recovery properties of the tracestore durability subsystem.
//!
//! The contract under test (see `docs/ROBUSTNESS.md`): for *any* crash point
//! during collection — mid-chunk, mid-rotation, mid-checkpoint, torn or
//! clean — `recover_dataset` must turn the crashed directory back into a
//! readable dataset whose per-monitor streams are an exact prefix of the
//! fault-free run, with zero loss of anything a checkpoint promised durable,
//! and recovery itself must be idempotent and re-runnable after being
//! crashed mid-repair. Complemented by the byte-level torn-tail property
//! (any truncation of a segment file recovers the longest CRC-valid chunk
//! prefix and never panics) and the read-side degradation mode
//! (`ReadOptions::skip_corrupt` streams a damaged dataset end to end and
//! reports exactly what it skipped).

use ipfs_monitoring::bitswap::RequestType;
use ipfs_monitoring::simnet::time::SimTime;
use ipfs_monitoring::tracestore::{
    recover_dataset, recover_dataset_with, AnalysisSink, Codec, ConnectionRecord, DatasetConfig,
    DatasetWriter, EntryFlags, FaultPlan, FaultyStorage, ManifestReader, ReadOptions,
    SegmentConfig, TraceEntry, TraceReader,
};
use ipfs_monitoring::types::{Cid, Country, Multiaddr, Multicodec, PeerId, Transport};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

mod common;
use common::fresh_dir as temp_dir;

const MONITORS: usize = 2;
const ENTRIES: u64 = 240;

fn entry(i: u64, monitor: usize) -> TraceEntry {
    TraceEntry {
        // Strictly increasing per monitor, so a monitor's stream order is
        // its append order and prefix-consistency is directly comparable.
        timestamp: SimTime::from_millis(i * 10 + monitor as u64),
        peer: PeerId::derived(5, i % 13),
        address: Multiaddr::new((i % 7) as u32, 4001, Transport::Tcp, Country::Us),
        request_type: if i.is_multiple_of(3) {
            RequestType::WantBlock
        } else {
            RequestType::WantHave
        },
        cid: Cid::new_v1(Multicodec::Raw, &(i % 31).to_be_bytes()),
        monitor,
        flags: EntryFlags::default(),
    }
}

/// The fault-free reference: what each monitor would hold if nothing ever
/// crashed, in stream order.
fn reference_per_monitor() -> Vec<Vec<TraceEntry>> {
    let mut per_monitor = vec![Vec::new(); MONITORS];
    for i in 0..ENTRIES {
        let monitor = (i % MONITORS as u64) as usize;
        per_monitor[monitor].push(entry(i, monitor));
    }
    per_monitor
}

fn config(codec: Codec) -> DatasetConfig {
    DatasetConfig {
        segment: SegmentConfig {
            chunk_capacity: 16,
            codec,
        },
        rotate_after_entries: 50,
        checkpoint_after_entries: 60,
    }
}

fn connection(monitor: usize) -> ConnectionRecord {
    ConnectionRecord {
        monitor,
        peer: PeerId::derived(5, monitor as u64),
        address: Multiaddr::new(monitor as u32, 4001, Transport::Tcp, Country::Us),
        connected_at: SimTime::from_millis(0),
        disconnected_at: None,
    }
}

/// Drives a collection run against `storage` until the first error (the
/// injected crash) or clean completion. Returns whether `finish` ran clean.
fn drive_collection(dir: &Path, codec: Codec, storage: &FaultyStorage) -> bool {
    let mut writer = match DatasetWriter::create_with(
        dir,
        vec!["us".into(), "de".into()],
        config(codec),
        Arc::new(storage.clone()),
    ) {
        Ok(writer) => writer,
        Err(_) => return false,
    };
    for monitor in 0..MONITORS {
        if writer.record_connection(connection(monitor)).is_err() {
            return false;
        }
    }
    for i in 0..ENTRIES {
        let monitor = (i % MONITORS as u64) as usize;
        if writer.append(&entry(i, monitor)).is_err() {
            return false;
        }
    }
    writer.finish().is_ok()
}

/// Streams every monitor of a recovered dataset and checks it is an exact
/// prefix of the fault-free reference. Returns total entries streamed.
fn assert_prefix_consistent(dir: &Path, reference: &[Vec<TraceEntry>], context: &str) -> u64 {
    let reader = ManifestReader::open(dir)
        .unwrap_or_else(|error| panic!("{context}: recovered dataset must open: {error}"));
    assert!(
        reader.monitor_count() <= reference.len(),
        "{context}: recovery cannot invent monitors"
    );
    let mut streamed = 0u64;
    for (monitor, want) in reference.iter().enumerate().take(reader.monitor_count()) {
        let mut stream = reader.stream_monitor_sorted(monitor);
        let recovered: Vec<TraceEntry> = stream.by_ref().collect();
        assert!(
            stream.take_error().is_none(),
            "{context}: recovered monitor {monitor} must stream clean"
        );
        assert!(
            recovered.len() <= want.len(),
            "{context}: monitor {monitor} recovered more than was written"
        );
        assert_eq!(
            recovered,
            want[..recovered.len()],
            "{context}: monitor {monitor} is not a prefix of the fault-free run"
        );
        streamed += recovered.len() as u64;
    }
    streamed
}

/// The tentpole property: a matrix of ≥50 crash points — every codec, clean
/// and torn crashes, ops spanning chunk spills, rotations, checkpoints and
/// the final manifest write — each recovered to a prefix-consistent dataset
/// with zero loss past the last checkpoint, and recovery idempotent.
#[test]
fn crash_matrix_recovers_prefix_consistent_datasets() {
    let reference = reference_per_monitor();
    let mut crash_points_tested = 0u64;
    let mut truncations_seen = 0u64;

    for codec in [Codec::Raw, Codec::Lz, Codec::Col] {
        // Learn the op budget of a fault-free run, and pin the reference.
        let clean_dir = temp_dir(&format!("clean-{codec:?}"));
        let probe = FaultyStorage::new(FaultPlan::none());
        assert!(
            drive_collection(&clean_dir, codec, &probe),
            "fault-free run must finish"
        );
        let total_ops = probe.ops();
        assert!(total_ops >= 20, "run must route its I/O through Storage");
        assert_eq!(
            assert_prefix_consistent(&clean_dir, &reference, "fault-free"),
            ENTRIES,
            "fault-free run must hold every entry"
        );
        std::fs::remove_dir_all(&clean_dir).unwrap();

        // Sample crash points across the whole run; alternate clean crashes
        // (the failing op never happens) with torn ones (the failing write
        // lands a bogus prefix that recovery must cut back).
        let stride = (total_ops / 18).max(1);
        for (k, crash_at) in (0..total_ops).step_by(stride as usize).enumerate() {
            let dir = temp_dir(&format!("crash-{codec:?}-{crash_at}"));
            let plan = if k % 2 == 0 {
                FaultPlan::crash_at(crash_at)
            } else {
                FaultPlan::torn_at(crash_at, 0x5eed ^ crash_at)
            };
            let faulty = FaultyStorage::new(plan);
            let finished = drive_collection(&dir, codec, &faulty);
            assert!(!finished, "crash at op {crash_at} must abort the run");

            let context = format!("codec {codec:?} crash at op {crash_at}");
            let report = recover_dataset(&dir)
                .unwrap_or_else(|error| panic!("{context}: recovery failed: {error}"));
            assert_eq!(
                report.entries_lost_after_checkpoint, 0,
                "{context}: checkpointed entries must survive any crash"
            );
            truncations_seen += report.segments_truncated as u64;

            let streamed = assert_prefix_consistent(&dir, &reference, &context);
            assert_eq!(
                streamed, report.entries_recovered,
                "{context}: report must count exactly what streams back"
            );
            let durable: u64 = report.resume.iter().map(|c| c.entries_durable).sum();
            assert_eq!(
                durable, report.entries_recovered,
                "{context}: resume cursors must agree with the recovered total"
            );

            // Idempotence: recovering a recovered dataset changes nothing.
            let again = recover_dataset(&dir)
                .unwrap_or_else(|error| panic!("{context}: second recovery failed: {error}"));
            assert!(again.clean, "{context}: second recovery must be a no-op");
            assert_eq!(again.entries_recovered, report.entries_recovered);

            crash_points_tested += 1;
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
    assert!(
        crash_points_tested >= 50,
        "matrix must cover at least 50 crash points, got {crash_points_tested}"
    );
    assert!(
        truncations_seen > 0,
        "matrix must exercise torn-tail truncation at least once"
    );
}

/// Writes a single-segment, single-monitor dataset and returns the segment
/// path plus the chunk index boundaries (end offset, cumulative entries).
fn single_segment_dataset(dir: &Path, codec: Codec, entries: u64) -> (PathBuf, Vec<(u64, u64)>) {
    let mut writer = DatasetWriter::create(
        dir,
        vec!["us".into()],
        DatasetConfig {
            segment: SegmentConfig {
                chunk_capacity: 16,
                codec,
            },
            rotate_after_entries: u64::MAX,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    for i in 0..entries {
        writer.append(&entry(i, 0)).unwrap();
    }
    writer.finish().unwrap();
    let path = dir.join("seg-000-00000.seg");
    let bytes = std::fs::read(&path).unwrap();
    let reader = TraceReader::new(ipfs_monitoring::tracestore::SliceSource::new(&bytes)).unwrap();
    let mut cumulative = 0u64;
    let boundaries = reader
        .chunks()
        .iter()
        .map(|info| {
            cumulative += info.entries;
            (info.offset + info.len, cumulative)
        })
        .collect();
    (path, boundaries)
}

/// Entries recoverable from a segment truncated to `len` bytes: the longest
/// chunk prefix whose frames fit entirely inside the kept bytes.
fn expected_after_truncation(boundaries: &[(u64, u64)], len: u64) -> u64 {
    boundaries
        .iter()
        .take_while(|(end, _)| *end <= len)
        .last()
        .map(|(_, entries)| *entries)
        .unwrap_or(0)
}

/// Truncates the segment to `len`, recovers, and checks the dataset streams
/// exactly the longest CRC-valid chunk prefix. Never panics, any `len`.
fn check_truncation(codec: Codec, len: u64, tag: &str) {
    let dir = temp_dir(&format!("torn-{tag}"));
    let (path, boundaries) = single_segment_dataset(&dir, codec, 200);
    let full = std::fs::metadata(&path).unwrap().len();
    let len = len.min(full);
    let expected = expected_after_truncation(&boundaries, len);

    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..len as usize]).unwrap();

    let context = format!("codec {codec:?} truncated to {len}/{full}");
    let report =
        recover_dataset(&dir).unwrap_or_else(|error| panic!("{context}: recovery failed: {error}"));
    assert_eq!(
        report.entries_recovered, expected,
        "{context}: must recover exactly the valid chunk prefix"
    );

    let reference = {
        let mut per_monitor = vec![Vec::new()];
        for i in 0..200 {
            per_monitor[0].push(entry(i, 0));
        }
        per_monitor
    };
    let streamed = assert_prefix_consistent(&dir, &reference, &context);
    assert_eq!(streamed, expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    /// Any byte-length truncation of a segment, any codec: recovery returns
    /// the longest CRC-valid chunk prefix and never panics.
    #[test]
    fn torn_tail_truncation_recovers_longest_valid_prefix(
        codec_index in 0usize..3,
        fraction in 0.0f64..=1.0,
    ) {
        let codec = [Codec::Raw, Codec::Lz, Codec::Col][codec_index];
        // `check_truncation` clamps to the real file length; 1 MiB is a safe
        // upper bound for a 200-entry segment, so `fraction` spans the file.
        let len = (fraction * (1 << 20) as f64) as u64;
        check_truncation(codec, len, &format!("prop-{codec_index}-{len}"));
    }
}

/// Deterministic boundary sweep of the same property: exact chunk frame
/// boundaries and their off-by-one neighbours, plus the degenerate lengths.
#[test]
fn torn_tail_boundary_sweep() {
    for codec in [Codec::Raw, Codec::Lz, Codec::Col] {
        let probe_dir = temp_dir(&format!("torn-probe-{codec:?}"));
        let (path, boundaries) = single_segment_dataset(&probe_dir, codec, 200);
        let full = std::fs::metadata(&path).unwrap().len();
        std::fs::remove_dir_all(&probe_dir).unwrap();

        let mut lengths = vec![0, 1, 4, 5, 6, full.saturating_sub(1), full];
        for &(end, _) in &boundaries {
            lengths.extend([end.saturating_sub(1), end, end + 1]);
        }
        for (k, len) in lengths.into_iter().enumerate() {
            check_truncation(codec, len, &format!("sweep-{codec:?}-{k}"));
        }
    }
}

#[derive(Clone, Default)]
struct CountSink {
    entries: u64,
}

impl AnalysisSink for CountSink {
    type Output = u64;

    fn consume(&mut self, _entry: TraceEntry) {
        self.entries += 1;
    }

    fn combine(&mut self, other: Self) {
        self.entries += other.entries;
    }

    fn finish(self) -> u64 {
        self.entries
    }
}

/// `ReadOptions::skip_corrupt` streams a damaged dataset end to end —
/// deleted, truncated, and CRC-corrupted segments — in every merge mode, and
/// reports exactly which segments were skipped.
#[test]
fn skip_corrupt_streams_damaged_dataset_with_exact_report() {
    let dir = temp_dir("skip-corrupt");
    let mut writer =
        DatasetWriter::create(&dir, vec!["us".into(), "de".into()], config(Codec::Col)).unwrap();
    for i in 0..ENTRIES {
        let monitor = (i % MONITORS as u64) as usize;
        writer.append(&entry(i, monitor)).unwrap();
    }
    writer.finish().unwrap();

    // Monitor 0 rotates every 50 of its 120 entries: seg 0..=2. Damage:
    // delete its middle segment, CRC-break a late chunk of its last segment
    // (footer stays valid, so the damage only surfaces mid-stream), and
    // truncate monitor 1's first segment so it fails at open.
    let deleted = dir.join("seg-000-00001.seg");
    std::fs::remove_file(&deleted).unwrap();

    let corrupted = dir.join("seg-000-00002.seg");
    let mut bytes = std::fs::read(&corrupted).unwrap();
    let reader = TraceReader::new(ipfs_monitoring::tracestore::SliceSource::new(&bytes)).unwrap();
    let chunks: Vec<_> = reader.chunks().to_vec();
    assert!(
        chunks.len() >= 2,
        "need a chunk to survive before the damage"
    );
    let target = &chunks[1];
    let salvageable_entries: u64 = chunks[..1].iter().map(|c| c.entries).sum();
    let flip_at = (target.offset + target.len / 2) as usize;
    drop(reader);
    bytes[flip_at] ^= 0x40;
    std::fs::write(&corrupted, &bytes).unwrap();

    let truncated = dir.join("seg-001-00000.seg");
    let head = std::fs::read(&truncated).unwrap();
    std::fs::write(&truncated, &head[..10]).unwrap();

    // Without the option, the damage is a hard open error.
    assert!(ManifestReader::open(&dir).is_err());

    let reference = reference_per_monitor();
    // Monitor 0: seg 0 (entries 0..50 of the monitor) + the valid chunk
    // prefix of seg 2 (entries 100..100+salvageable). Monitor 1: seg 0 is
    // gone at open, segs 1..=2 stream whole.
    let expected_m0: Vec<TraceEntry> = reference[0][..50]
        .iter()
        .chain(&reference[0][100..100 + salvageable_entries as usize])
        .cloned()
        .collect();
    let expected_m1: Vec<TraceEntry> = reference[1][50..].to_vec();

    for decode_ahead in [false, true] {
        let options = ReadOptions::default()
            .skip_corrupt(true)
            .decode_ahead(decode_ahead);
        let reader = ManifestReader::open_with(&dir, options).unwrap();

        // Open-time skips are visible immediately.
        let at_open = reader.skipped_segments();
        assert_eq!(
            at_open
                .iter()
                .map(|s| (s.monitor, s.sequence))
                .collect::<Vec<_>>(),
            vec![(0, 1), (1, 0)],
            "open-time report must name the deleted and truncated segments"
        );

        let mut stream = reader.stream_merged();
        let entries: Vec<TraceEntry> = stream.by_ref().collect();
        assert!(stream.take_error().is_none(), "degraded mode never errors");
        drop(stream);

        let merged_m0: Vec<_> = entries.iter().filter(|e| e.monitor == 0).cloned().collect();
        let merged_m1: Vec<_> = entries.iter().filter(|e| e.monitor == 1).cloned().collect();
        assert_eq!(merged_m0, expected_m0, "decode_ahead={decode_ahead}");
        assert_eq!(merged_m1, expected_m1, "decode_ahead={decode_ahead}");

        // After the drain the report also carries the mid-stream casualty.
        let skipped = reader.skipped_segments();
        assert_eq!(
            skipped
                .iter()
                .map(|s| (s.monitor, s.sequence, s.file_name.as_str()))
                .collect::<Vec<_>>(),
            vec![
                (0, 1, "seg-000-00001.seg"),
                (0, 2, "seg-000-00002.seg"),
                (1, 0, "seg-001-00000.seg"),
            ],
            "decode_ahead={decode_ahead}: report must be exact"
        );
        for skip in &skipped {
            assert!(!skip.reason.is_empty(), "every skip carries a reason");
        }

        // The parallel analysis driver degrades the same way.
        let reader = ManifestReader::open_with(&dir, options).unwrap();
        let total = reader.run_parallel(CountSink::default()).unwrap();
        assert_eq!(total, (expected_m0.len() + expected_m1.len()) as u64);
        assert_eq!(reader.skipped_segments().len(), 3);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for item in std::fs::read_dir(from).unwrap() {
        let item = item.unwrap();
        if item.file_type().unwrap().is_file() {
            std::fs::copy(item.path(), to.join(item.file_name())).unwrap();
        }
    }
}

/// Recovery itself can be killed at any injected op and re-run: the rerun
/// converges to the same dataset a single clean recovery produces.
#[test]
fn recovery_survives_crashes_during_recovery() {
    // One damaged dataset, reused as the template for every crash point.
    let template = temp_dir("rec-crash-template");
    let mut writer =
        DatasetWriter::create(&template, vec!["us".into(), "de".into()], config(Codec::Lz))
            .unwrap();
    for i in 0..ENTRIES {
        let monitor = (i % MONITORS as u64) as usize;
        writer.append(&entry(i, monitor)).unwrap();
    }
    writer.finish().unwrap();
    // Damage: cut the last third off one segment (forces a rebuild) and
    // leave a stale tmp file (forces a sweep).
    let victim = template.join("seg-001-00001.seg");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() * 2 / 3]).unwrap();
    std::fs::write(template.join("seg-000-00000.seg.tmp"), b"stale").unwrap();

    // Reference: one clean recovery of the damaged template.
    let reference_dir = temp_dir("rec-crash-reference");
    copy_dir(&template, &reference_dir);
    let probe = FaultyStorage::new(FaultPlan::none());
    let reference_report = recover_dataset_with(&reference_dir, &probe).unwrap();
    assert!(reference_report.segments_truncated > 0);
    assert!(reference_report.tmp_files_swept > 0);
    let total_ops = probe.ops();
    assert!(total_ops > 0, "recovery must route through Storage");
    let reference = reference_per_monitor();
    let reference_total = assert_prefix_consistent(&reference_dir, &reference, "clean recovery");
    assert_eq!(reference_total, reference_report.entries_recovered);

    for crash_at in 0..total_ops {
        let dir = temp_dir(&format!("rec-crash-{crash_at}"));
        copy_dir(&template, &dir);
        let faulty = FaultyStorage::new(FaultPlan::crash_at(crash_at));
        // The crashed attempt may fail anywhere; whatever it left behind,
        // a clean rerun must converge to the reference outcome.
        let _ = recover_dataset_with(&dir, &faulty);
        let report = recover_dataset(&dir)
            .unwrap_or_else(|error| panic!("rerun after crash at op {crash_at}: {error}"));
        assert_eq!(
            report.entries_recovered, reference_report.entries_recovered,
            "crash at op {crash_at}: rerun must recover the same entries"
        );
        let total = assert_prefix_consistent(
            &dir,
            &reference,
            &format!("rerun after crash at op {crash_at}"),
        );
        assert_eq!(total, reference_total);
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&template).unwrap();
    std::fs::remove_dir_all(&reference_dir).unwrap();
}
