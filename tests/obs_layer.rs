//! Integration coverage for the observability layer (`ipfs-mon-obs`) as
//! wired through the pipeline:
//!
//! * metric handles registered across layers actually track real work
//!   (simulation events, decoded chunks, analysis entries);
//! * per-monitor analysis progress (`run_parallel_with_progress`) is exact
//!   in both build flavours, instrumented and `obs-off`;
//! * the instrumentation is output-passive — the pipeline produces
//!   byte-identical traces with a live heartbeat reporter sampling
//!   concurrently and with none at all (so an `obs-off` build, which strips
//!   the probes entirely, trivially produces the same bytes; CI runs this
//!   whole suite in both configurations);
//! * heartbeat JSONL lines parse and carry the documented fields;
//! * histogram bucket/quantile contracts hold through the public API;
//! * snapshots round-trip through JSON.
//!
//! Metric state is global per test binary and the harness runs tests
//! concurrently, so counter assertions use unique metric names or `>=`
//! deltas, never exact global equality on shared names.

mod common;

use common::temp_dir;
use ipfs_monitoring::obs;
use ipfs_monitoring::tracestore::{AnalysisSink, ManifestReader, MonitoringDataset, TraceEntry};
use serde::content::{struct_field, Content};
use std::path::Path;

fn run_pipeline(seed: u64) -> MonitoringDataset {
    common::simulated_dataset(seed, 100)
}

fn write_manifest(dataset: &MonitoringDataset, dir: &Path) {
    common::write_manifest_rotated(
        dataset,
        dir,
        (dataset.total_entries() as u64 / 3).max(1),
        64,
    );
}

/// Trivial associative sink: counts entries.
#[derive(Clone, Default, PartialEq, Debug)]
struct CountSink {
    count: u64,
}

impl AnalysisSink for CountSink {
    type Output = u64;

    fn consume(&mut self, _entry: TraceEntry) {
        self.count += 1;
    }

    fn combine(&mut self, other: Self) {
        self.count += other.count;
    }

    fn finish(self) -> u64 {
        self.count
    }
}

/// The cross-layer counters and stage histograms move when the pipeline
/// does real work (and stay empty under `obs-off`).
#[test]
fn pipeline_metrics_track_real_work() {
    let dataset = run_pipeline(41);
    let total = dataset.total_entries() as u64;
    assert!(total > 0, "scenario must produce observations");

    let dir = temp_dir("metrics");
    write_manifest(&dataset, &dir);
    let reader = ManifestReader::open(&dir).expect("open manifest");
    let before = obs::snapshot();
    let progress = reader.run_parallel_with_progress(CountSink::default());
    assert_eq!(progress.result.expect("analysis"), total);
    let after = obs::snapshot();
    std::fs::remove_dir_all(&dir).ok();

    if obs::is_enabled() {
        let delta = |name: &str| {
            after.counters.get(name).copied().unwrap_or(0)
                - before.counters.get(name).copied().unwrap_or(0)
        };
        // `>=` because other tests in this binary drive the same global
        // counters concurrently.
        assert!(delta("analysis.entries") >= total);
        assert!(delta("store.chunks_decoded") >= 1);
        assert!(delta("store.entries_decoded") >= total);
        assert!(after.counters.get("sim.events").copied().unwrap_or(0) > 0);
        assert!(after.counters.get("ingest.entries").copied().unwrap_or(0) >= total);
        let decode = after
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with("store.chunk_decode_ns."))
            .map(|(_, h)| h.count)
            .sum::<u64>();
        assert!(decode >= 1, "decode stage histogram must have samples");
    } else {
        assert!(after.counters.is_empty());
        assert!(after.histograms.is_empty());
        assert!(after.gauges.is_empty());
    }
}

/// Per-monitor progress from `run_parallel_with_progress` is exact in both
/// build flavours: it is functional accounting, not a metrics read-back.
#[test]
fn parallel_progress_is_exact_in_both_configs() {
    let dataset = run_pipeline(42);
    let per_monitor: Vec<u64> = dataset.entries.iter().map(|e| e.len() as u64).collect();
    let dir = temp_dir("progress");
    write_manifest(&dataset, &dir);
    let reader = ManifestReader::open(&dir).expect("open manifest");
    let progress = reader.run_parallel_with_progress(CountSink::default());
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        progress.result.expect("analysis"),
        per_monitor.iter().sum::<u64>()
    );
    assert_eq!(progress.entries_consumed, per_monitor);
}

/// Output passivity: the pipeline's trace bytes are identical whether a
/// heartbeat reporter is actively sampling the registry or no reporter
/// exists at all. Run under both default and `obs-off` features, this is
/// the byte-identity property the `obs-off` feature promises.
#[test]
fn instrumentation_is_output_passive() {
    let quiet = run_pipeline(43).to_json().expect("encode");

    let heartbeat_path = temp_dir("passive").with_extension("jsonl");
    let reporter = {
        let config = obs::ReporterConfig::with_interval(std::time::Duration::from_millis(1));
        obs::Reporter::to_file(&heartbeat_path, config).expect("reporter file")
    };
    let sampled = run_pipeline(43).to_json().expect("encode");
    reporter.stop();
    std::fs::remove_file(&heartbeat_path).ok();

    assert_eq!(quiet, sampled, "reporter sampling must not perturb outputs");
}

/// Heartbeat lines are valid JSON with the documented fields; the final
/// line carries `done: true`. Under `obs-off` no file is even created.
#[test]
fn heartbeat_lines_parse_and_finish_with_done() {
    let path = temp_dir("heartbeat").with_extension("jsonl");
    std::fs::remove_file(&path).ok();
    let reporter = obs::Reporter::to_file(
        &path,
        obs::ReporterConfig::with_interval(std::time::Duration::from_millis(10)),
    )
    .expect("reporter file");
    // Drive some work so counters exist, then give the reporter a tick.
    let _ = run_pipeline(44);
    std::thread::sleep(std::time::Duration::from_millis(40));
    reporter.stop();

    if !obs::is_enabled() {
        assert!(!path.exists(), "obs-off must not create heartbeat files");
        return;
    }
    let text = std::fs::read_to_string(&path).expect("heartbeat file");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());
    for (i, line) in lines.iter().enumerate() {
        let value: Content = serde_json::from_str(line).expect("heartbeat JSON");
        let map = value.as_map().expect("heartbeat object");
        for field in [
            "heartbeat",
            "uptime_s",
            "events_per_sec",
            "counters",
            "histograms",
        ] {
            struct_field(map, field).expect("documented heartbeat field");
        }
        let done = struct_field(map, "done")
            .ok()
            .and_then(Content::as_bool)
            .expect("done flag");
        assert_eq!(done, i == lines.len() - 1, "only the last line is final");
    }
    let last: Content = serde_json::from_str(lines.last().unwrap()).unwrap();
    let counters = struct_field(last.as_map().unwrap(), "counters")
        .ok()
        .and_then(Content::as_map)
        .unwrap();
    assert!(
        counters.iter().any(|(name, _)| name == "sim.events"),
        "pipeline counters appear in the heartbeat"
    );
}

/// Bucket/quantile contract through the public API: every value lands in a
/// bucket whose bounds contain it, and quantiles are monotone and bounded.
#[test]
fn histogram_bucket_and_quantile_contract() {
    for value in (0u64..70).map(|i| 1u64.checked_shl(i as u32).unwrap_or(u64::MAX)) {
        for v in [value.saturating_sub(1), value, value.saturating_add(1)] {
            let (low, high) = obs::bucket_bounds(obs::bucket_index(v) as u8);
            assert!(low <= v && v <= high, "{v} outside [{low}, {high}]");
        }
    }

    let hist = obs::histogram!("test.obs_layer.quantiles");
    for v in [1u64, 3, 7, 90, 90, 4096, 70_000] {
        hist.record(v);
    }
    let snapshot = obs::snapshot();
    if obs::is_enabled() {
        let h = snapshot
            .histograms
            .get("test.obs_layer.quantiles")
            .expect("recorded histogram");
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1 + 3 + 7 + 90 + 90 + 4096 + 70_000);
        let quantiles: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for pair in quantiles.windows(2) {
            assert!(pair[0] <= pair[1], "quantiles must be monotone");
        }
        assert!(quantiles[0] >= 1.0);
        assert!(*quantiles.last().unwrap() <= h.max_bound() as f64);
        assert!((h.mean() - (h.sum as f64 / 7.0)).abs() < 1e-9);
    } else {
        assert!(snapshot.histograms.is_empty());
    }
}

/// Snapshots survive a JSON round-trip in both build flavours (under
/// `obs-off` the snapshot is empty — and still round-trips).
#[test]
fn snapshot_roundtrips_through_facade_json() {
    obs::counter!("test.obs_layer.roundtrip").add(17);
    obs::gauge!("test.obs_layer.gauge").set(5);
    obs::histogram!("test.obs_layer.hist").record(1000);
    let snapshot = obs::snapshot();
    let json = serde_json::to_string(&snapshot).expect("encode snapshot");
    let back: obs::Snapshot = serde_json::from_str(&json).expect("decode snapshot");
    assert_eq!(snapshot, back);
    if obs::is_enabled() {
        assert_eq!(back.counters.get("test.obs_layer.roundtrip"), Some(&17));
        assert_eq!(back.gauges.get("test.obs_layer.gauge"), Some(&5));
        assert_eq!(
            back.histograms.get("test.obs_layer.hist").map(|h| h.count),
            Some(1)
        );
    }
}
