//! Parallel analysis engine integration coverage.
//!
//! Property tests proving the two guarantees the engine rests on, for every
//! ported analysis (request-type series, popularity, activity counts,
//! descriptive stats):
//!
//! 1. **driver equivalence** — `ManifestReader::run_parallel(sink)` equals
//!    the serial wrapper (`run_sink` over the merged stream) on arbitrary
//!    datasets, rotation layouts and read options;
//! 2. **combine-order invariance** — folding each monitor's stream into its
//!    own sink clone and combining the partials in a *shuffled* order (any
//!    worker completion order a parallel run could exhibit) equals the
//!    serial output.
//!
//! Plus equivalence of the sink outputs with the pre-engine entry points
//! they wrap (`request_type_series`, `popularity_scores_stream`,
//! `per_peer_request_counts_stream`, `multicodec_shares`).

mod common;

use common::{random_dataset, write_manifest_rotated as write_manifest};
use ipfs_monitoring::core::{
    activity_counts_source, entry_stats_source, multicodec_shares, per_peer_request_counts_stream,
    popularity_scores_source, popularity_scores_stream, request_type_series,
    request_type_series_source, ActivityCountsSink, AnalysisSink, EntryStatsSink, PopularitySink,
    RequestTypeSink,
};
use ipfs_monitoring::simnet::time::SimDuration;
use ipfs_monitoring::tracestore::{run_sink, ManifestReader, ReadOptions, TraceSource};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn temp_dir(tag: &str, seed: u64) -> PathBuf {
    common::temp_dir(&format!("par-an-{tag}-{seed}"))
}

/// Folds one monitor's time-sorted stream into a fresh clone of `sink`.
fn fold_monitor<K: AnalysisSink + Clone>(reader: &ManifestReader, monitor: usize, sink: &K) -> K {
    let mut part = sink.clone();
    for entry in reader.stream_monitor_sorted(monitor) {
        part.consume(entry);
    }
    part
}

/// Combines per-monitor partials in the given (shuffled) order.
fn combine_in_order<K: AnalysisSink + Clone>(mut parts: Vec<K>, order: &[usize]) -> K {
    let mut acc: Option<K> = None;
    for &m in order {
        let part = parts[m].clone();
        match acc.as_mut() {
            None => acc = Some(part),
            Some(acc) => acc.combine(part),
        }
    }
    let _ = parts.drain(..);
    acc.expect("at least one monitor")
}

proptest! {
    /// Driver equivalence + combine-order invariance for all four ported
    /// analyses, over random datasets, rotation layouts, read options and
    /// shuffled combine orders.
    #[test]
    fn parallel_engine_matches_serial_wrappers(
        seed in 0u64..1_000_000,
        monitors in 1usize..4,
        per_monitor in 1usize..90,
        jitter in 0u64..2_000,
        rotate in 5u64..60,
        chunk in 1usize..32,
        mmap in any::<bool>(),
        decode_ahead in any::<bool>(),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let dataset = random_dataset(seed, monitors, per_monitor, jitter);
        let dir = temp_dir("prop", seed);
        write_manifest(&dataset, &dir, rotate, chunk);
        let options = ReadOptions::default().mmap(mmap).decode_ahead(decode_ahead);
        let reader = ManifestReader::open_with(&dir, options).unwrap();

        // A shuffled worker-completion order.
        let mut order: Vec<usize> = (0..monitors).collect();
        let mut shuffle_rng = StdRng::seed_from_u64(shuffle_seed);
        for i in (1..order.len()).rev() {
            order.swap(i, shuffle_rng.gen_range(0..=i));
        }

        macro_rules! check {
            ($make:expr, $label:literal) => {{
                let serial = run_sink(&reader, $make).unwrap();
                let parallel = reader.run_parallel($make).unwrap();
                prop_assert_eq!(&serial, &parallel, "run_parallel diverges: {}", $label);
                let parts: Vec<_> = (0..monitors)
                    .map(|m| fold_monitor(&reader, m, &$make))
                    .collect();
                let shuffled = combine_in_order(parts, &order).finish();
                prop_assert_eq!(&serial, &shuffled,
                    "shuffled combine order {:?} diverges: {}", &order, $label);
            }};
        }

        let bucket = SimDuration::from_secs(30);
        check!(RequestTypeSink::new(bucket), "request-type series");
        check!(PopularitySink::new(), "popularity");
        check!(ActivityCountsSink::new(), "activity counts");
        check!(EntryStatsSink::new(), "entry stats");

        // Composed sinks run through the same machinery.
        let serial = run_sink(&reader, (PopularitySink::new(), EntryStatsSink::new())).unwrap();
        let parallel = reader
            .run_parallel((PopularitySink::new(), EntryStatsSink::new()))
            .unwrap();
        prop_assert_eq!(serial, parallel);

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The sinks equal the pre-engine entry points they wrap, on a trace from
/// the standard in-memory path (the reference semantics).
#[test]
fn sink_outputs_match_wrapped_entry_points() {
    let dataset = random_dataset(4242, 3, 400, 1_500);
    let dir = temp_dir("wrapped", 4242);
    write_manifest(&dataset, &dir, 64, 24);
    let reader = ManifestReader::open(&dir).unwrap();

    // Request-type series: row m equals the in-memory per-monitor analysis.
    let bucket = SimDuration::from_hours(1);
    let series = request_type_series_source(&reader, bucket).unwrap();
    assert_eq!(series.len(), 3);
    for (m, row) in series.iter().enumerate() {
        assert_eq!(
            row,
            &request_type_series(&dataset, m, bucket),
            "monitor {m}"
        );
    }
    assert_eq!(
        series,
        reader.run_parallel(RequestTypeSink::new(bucket)).unwrap()
    );

    // Popularity: equals the single-stream wrapper over the merged stream.
    let scores = popularity_scores_source(&reader).unwrap();
    assert_eq!(scores, popularity_scores_stream(reader.merged_entries()));
    assert_eq!(scores, reader.run_parallel(PopularitySink::new()).unwrap());

    // Activity counts: per-peer rows equal the stream wrapper, multicodec
    // rows equal the in-memory Table I computation.
    let counts = activity_counts_source(&reader).unwrap();
    assert_eq!(
        counts.per_peer,
        per_peer_request_counts_stream(reader.merged_entries())
    );
    assert_eq!(counts.multicodec, multicodec_shares(&dataset));
    assert_eq!(
        counts,
        reader.run_parallel(ActivityCountsSink::new()).unwrap()
    );

    // Entry stats: per-monitor counts reconcile with the dataset.
    let stats = entry_stats_source(&reader).unwrap();
    assert_eq!(stats.len(), 3);
    for (m, s) in stats.iter().enumerate() {
        assert_eq!(s.entries as usize, dataset.entries[m].len(), "monitor {m}");
        assert_eq!(s.requests + s.cancels, s.entries);
        assert_eq!(s.inter_arrival_ms.unwrap().count as u64, s.entries - 1);
    }
    assert_eq!(stats, reader.run_parallel(EntryStatsSink::new()).unwrap());

    std::fs::remove_dir_all(&dir).ok();
}
