//! Multi-segment manifest + `TraceSource` integration coverage.
//!
//! Property tests proving that datasets round-trip losslessly through
//! per-monitor rotated segment chains, that parallel per-monitor ingestion is
//! byte-identical to single-threaded routing, that chunk corruption inside
//! any segment of a manifest is detected, and that the streaming analyses
//! (preprocessing, network-size estimation, the privacy attacks) produce
//! output identical to the in-memory path when driven from a manifest-backed
//! `TraceSource`.

mod common;

use common::{random_dataset, temp_dir, write_manifest};
use ipfs_monitoring::core::{
    estimate_network_size, estimate_network_size_source, identify_data_wanters, run_attacks_source,
    track_node_wants, unify_and_flag, unify_and_flag_source, AttackTargets, ManifestCollector,
    MonitorCollector, PreprocessConfig,
};
use ipfs_monitoring::node::Network;
use ipfs_monitoring::simnet::time::{SimDuration, SimTime};
use ipfs_monitoring::tracestore::{
    ConnectionRecord, DatasetConfig, DatasetWriter, ManifestReader, SegmentConfig, TraceEntry,
    TraceReader, TraceSource,
};
use ipfs_monitoring::workload::{build_scenario, ScenarioConfig};
use proptest::prelude::*;

fn sorted_connections(mut records: Vec<ConnectionRecord>) -> Vec<ConnectionRecord> {
    records.sort_by_key(|r| (r.monitor, r.connected_at, r.peer, r.disconnected_at));
    records
}

proptest! {
    /// Rotation boundaries at arbitrary points, several monitors: the merged
    /// flagged stream over the manifest must be bit-identical to the
    /// in-memory path, and the connection records must survive unchanged.
    #[test]
    fn manifest_roundtrip_matches_in_memory(
        seed in 0u64..1_000_000,
        monitors in 1usize..4,
        per_monitor in 1usize..120,
        jitter in 0u64..2_500,
        rotate in 8u64..80,
        chunk in 1usize..48,
    ) {
        let dataset = random_dataset(seed, monitors, per_monitor, jitter);
        let dir = temp_dir(&format!("prop-{seed}-{monitors}-{per_monitor}"));
        write_manifest(&dataset, &dir, DatasetConfig {
            segment: SegmentConfig { chunk_capacity: chunk , ..SegmentConfig::default() },
            rotate_after_entries: rotate,
            ..DatasetConfig::default()
        });

        let reader = ManifestReader::open(&dir).unwrap();
        prop_assert_eq!(reader.total_entries() as usize, dataset.total_entries());
        // Rotation actually happened when the data demanded it.
        for monitor in 0..monitors {
            let expected = dataset.entries[monitor].len().div_ceil(rotate as usize);
            prop_assert_eq!(reader.segment_count(monitor), expected);
        }

        let (trace, stats) = unify_and_flag(&dataset, PreprocessConfig::default());
        let (streamed, streamed_stats) =
            unify_and_flag_source(&reader, PreprocessConfig::default()).unwrap();
        prop_assert_eq!(&streamed.entries, &trace.entries);
        prop_assert_eq!(streamed_stats, stats);

        prop_assert_eq!(
            sorted_connections(reader.connection_records().collect()),
            sorted_connections(dataset.connections.clone())
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A corrupted chunk inside *one* segment of a multi-segment manifest must
/// surface as an error from the streaming pipeline, not as silently truncated
/// analysis input.
#[test]
fn corrupted_chunk_in_manifest_segment_is_detected() {
    let dataset = random_dataset(17, 2, 120, 500);
    let dir = temp_dir("corrupt");
    write_manifest(
        &dataset,
        &dir,
        DatasetConfig {
            segment: SegmentConfig {
                chunk_capacity: 16,
                ..SegmentConfig::default()
            },
            rotate_after_entries: 40,
            ..DatasetConfig::default()
        },
    );

    // Locate a chunk inside one of monitor 1's segment files and flip a
    // payload byte, leaving header and footer intact.
    let victim = dir.join("seg-001-00001.seg");
    let reader =
        TraceReader::new(ipfs_monitoring::tracestore::FileSource::open(&victim).unwrap()).unwrap();
    let chunk = reader.chunks()[0];
    drop(reader);
    let mut bytes = std::fs::read(&victim).unwrap();
    let offset = chunk.offset as usize + chunk.len as usize / 2;
    bytes[offset] ^= 0xff;
    std::fs::write(&victim, bytes).unwrap();

    // The manifest still opens (footers are intact) …
    let reader = ManifestReader::open(&dir).unwrap();
    // … but every streaming consumer reports the damage.
    assert!(unify_and_flag_source(&reader, PreprocessConfig::default()).is_err());
    assert!(estimate_network_size_source(
        &reader,
        SimTime::ZERO,
        SimTime::from_secs(10),
        SimDuration::from_secs(10),
    )
    .is_err());
    assert!(run_attacks_source(
        &reader,
        PreprocessConfig::default(),
        &AttackTargets::default(),
        None,
    )
    .is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-monitor parallel ingestion must produce byte-identical segment files
/// (and manifest) to single-threaded routing of the same data.
#[test]
fn parallel_ingestion_is_byte_identical_to_single_threaded() {
    let dataset = random_dataset(99, 4, 300, 800);
    let config = DatasetConfig {
        segment: SegmentConfig {
            chunk_capacity: 64,
            ..SegmentConfig::default()
        },
        rotate_after_entries: 90,
        ..DatasetConfig::default()
    };

    let dir_single = temp_dir("par-single");
    write_manifest(&dataset, &dir_single, config);

    let dir_parallel = temp_dir("par-threads");
    let writer =
        DatasetWriter::create(&dir_parallel, dataset.monitor_labels.clone(), config).unwrap();
    let (builder, monitor_writers) = writer.into_parts();
    let handles: Vec<_> = monitor_writers
        .into_iter()
        .map(|mut monitor_writer| {
            let monitor = monitor_writer.monitor();
            let entries = dataset.entries[monitor].clone();
            let connections: Vec<ConnectionRecord> = dataset
                .connections
                .iter()
                .filter(|c| c.monitor == monitor)
                .cloned()
                .collect();
            std::thread::spawn(move || {
                for entry in &entries {
                    monitor_writer.append(entry).unwrap();
                }
                for connection in connections {
                    monitor_writer.record_connection(connection).unwrap();
                }
                monitor_writer.finish().unwrap()
            })
        })
        .collect();
    let parts = handles.into_iter().map(|h| h.join().unwrap()).collect();
    builder.finish(parts).unwrap();

    let mut names: Vec<String> = std::fs::read_dir(&dir_single)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(names.len() > dataset.monitor_count(), "rotation happened");
    for name in &names {
        let single = std::fs::read(dir_single.join(name)).unwrap();
        let parallel = std::fs::read(dir_parallel.join(name)).unwrap();
        assert_eq!(single, parallel, "file {name} differs between modes");
    }

    std::fs::remove_dir_all(&dir_single).ok();
    std::fs::remove_dir_all(&dir_parallel).ok();
}

/// End-to-end on a simulated scenario: collection through `ManifestCollector`
/// plus every ported analysis driven from the manifest must agree exactly
/// with the in-memory pipeline.
#[test]
fn scenario_analyses_from_manifest_match_in_memory() {
    let mut config = ScenarioConfig::small_test(4242);
    config.horizon = SimDuration::from_hours(2);

    let mut in_memory = MonitorCollector::us_de();
    Network::new(build_scenario(&config)).run(&mut in_memory);
    let dataset = in_memory.into_dataset();
    assert!(dataset.total_entries() > 0);

    let dir = temp_dir("scenario");
    let mut collector = ManifestCollector::us_de(
        &dir,
        DatasetConfig {
            segment: SegmentConfig {
                chunk_capacity: 128,
                ..SegmentConfig::default()
            },
            rotate_after_entries: (dataset.total_entries() as u64 / 5).max(1),
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let mut network = Network::new(build_scenario(&config));
    network.run(&mut collector);
    let summary = collector.finish().unwrap();
    assert_eq!(summary.total_entries as usize, dataset.total_entries());
    assert!(summary.segment_count >= 2, "rotation produced a chain");

    let reader = ManifestReader::open(&summary.manifest_path).unwrap();

    // Preprocessing.
    let (trace, stats) = unify_and_flag(&dataset, PreprocessConfig::default());
    let (streamed, streamed_stats) =
        unify_and_flag_source(&reader, PreprocessConfig::default()).unwrap();
    assert_eq!(streamed.entries, trace.entries);
    assert_eq!(streamed_stats, stats);

    // Network-size estimation (Sec. V-C), field-for-field.
    let start = SimTime::ZERO;
    let end = SimTime::ZERO + config.horizon;
    let interval = SimDuration::from_mins(30);
    let batch = estimate_network_size(&dataset, start, end, interval);
    let stream = estimate_network_size_source(&reader, start, end, interval).unwrap();
    assert_eq!(
        serde_json::to_string(&stream).unwrap(),
        serde_json::to_string(&batch).unwrap()
    );

    // Privacy attacks (Sec. VI-A): IDW + TNW from the manifest in one pass.
    let target_cid = trace
        .primary_requests()
        .map(|e| e.cid.clone())
        .next()
        .expect("trace has requests");
    let target_peer = trace
        .primary_requests()
        .map(|e| e.peer)
        .next()
        .expect("trace has requests");
    let suite = run_attacks_source(
        &reader,
        PreprocessConfig::default(),
        &AttackTargets {
            idw_cids: vec![target_cid.clone()],
            tnw_peers: vec![target_peer],
            tpi_probes: vec![(0, target_cid.clone())],
        },
        Some(&network),
    )
    .unwrap();
    assert_eq!(
        suite.idw[&target_cid],
        identify_data_wanters(&trace, &target_cid)
    );
    assert_eq!(
        suite.tnw[&target_peer],
        track_node_wants(&trace, &target_peer)
    );
    assert_eq!(suite.tpi.len(), 1);

    std::fs::remove_dir_all(&dir).ok();
}

/// The chain merge must admit segments lazily: streaming a long rotated
/// chain keeps only the segments overlapping the merge frontier open, not
/// the whole chain.
#[test]
fn chain_merge_keeps_bounded_active_window() {
    // One monitor, mild jitter, many rotation boundaries.
    let dataset = random_dataset(31, 1, 2_000, 300);
    let dir = temp_dir("lazy");
    write_manifest(
        &dataset,
        &dir,
        DatasetConfig {
            segment: SegmentConfig {
                chunk_capacity: 32,
                ..SegmentConfig::default()
            },
            rotate_after_entries: 100,
            ..DatasetConfig::default()
        },
    );
    let reader = ManifestReader::open(&dir).unwrap();
    assert!(reader.segment_count(0) >= 20);

    let mut stream = reader.stream_monitor_sorted(0);
    let mut max_active = 0;
    let mut count = 0usize;
    while stream.next().is_some() {
        max_active = max_active.max(stream.active_segments());
        count += 1;
    }
    assert!(stream.take_error().is_none());
    assert_eq!(count, dataset.total_entries());
    // Jitter (≤300 ms) is far smaller than a segment's time span
    // (~100 entries × ~1 s), so only adjacent segments ever overlap.
    assert!(
        max_active <= 2,
        "merge held {max_active} segments open at once"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Manifest listing order must not matter — the reader restores rotation
/// order from the sequence numbers — and ambiguous (duplicate) sequences are
/// rejected instead of silently mis-merging ties.
#[test]
fn manifest_listing_order_is_normalized_and_duplicates_rejected() {
    use ipfs_monitoring::tracestore::Manifest;

    let dataset = random_dataset(7, 2, 150, 600);
    let dir = temp_dir("order");
    write_manifest(
        &dataset,
        &dir,
        DatasetConfig {
            segment: SegmentConfig {
                chunk_capacity: 32,
                ..SegmentConfig::default()
            },
            rotate_after_entries: 40,
            ..DatasetConfig::default()
        },
    );
    let reference: Vec<TraceEntry> = ManifestReader::open(&dir)
        .unwrap()
        .merged_entries()
        .collect();

    // Scramble the listing order; the merged stream must be unchanged.
    let mut manifest = Manifest::load(&dir).unwrap();
    assert!(manifest.segments.len() > 4);
    manifest.segments.reverse();
    manifest.write_to(&dir).unwrap();
    let scrambled: Vec<TraceEntry> = ManifestReader::open(&dir)
        .unwrap()
        .merged_entries()
        .collect();
    assert_eq!(scrambled, reference);

    // Duplicate sequence numbers are ambiguous and must be rejected.
    let mut manifest = Manifest::load(&dir).unwrap();
    let monitor = manifest.segments[0].monitor;
    let mut first_sequence = None;
    for segment in manifest
        .segments
        .iter_mut()
        .filter(|s| s.monitor == monitor)
    {
        match first_sequence {
            None => first_sequence = Some(segment.sequence),
            Some(first) => {
                segment.sequence = first;
                break;
            }
        }
    }
    manifest.write_to(&dir).unwrap();
    assert!(ManifestReader::open(&dir).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

/// The `TraceSource` implementations agree with each other: the same data
/// viewed as an in-memory dataset, a single segment, and a manifest yields
/// one identical merged stream.
#[test]
fn all_trace_sources_yield_identical_merged_streams() {
    let dataset = random_dataset(55, 3, 250, 1_200);

    let bytes = dataset
        .to_segment_bytes(SegmentConfig {
            chunk_capacity: 32,
            ..SegmentConfig::default()
        })
        .unwrap();
    let segment_reader =
        TraceReader::new(ipfs_monitoring::tracestore::SliceSource::new(&bytes)).unwrap();

    let dir = temp_dir("sources");
    write_manifest(
        &dataset,
        &dir,
        DatasetConfig {
            segment: SegmentConfig {
                chunk_capacity: 32,
                ..SegmentConfig::default()
            },
            rotate_after_entries: 70,
            ..DatasetConfig::default()
        },
    );
    let manifest_reader = ManifestReader::open(&dir).unwrap();

    let from_memory: Vec<TraceEntry> = dataset.merged_entries().collect();
    let from_segment: Vec<TraceEntry> = segment_reader.merged_entries().collect();
    let from_manifest: Vec<TraceEntry> = manifest_reader.merged_entries().collect();
    assert_eq!(from_memory.len(), dataset.total_entries());
    assert_eq!(from_segment, from_memory);
    assert_eq!(from_manifest, from_memory);

    assert_eq!(
        sorted_connections(segment_reader.connection_records().collect()),
        sorted_connections(dataset.connections.clone())
    );
    assert_eq!(
        sorted_connections(manifest_reader.connection_records().collect()),
        sorted_connections(dataset.connections.clone())
    );
    std::fs::remove_dir_all(&dir).ok();
}
