//! Codec, source, and merge-mode robustness for the tracestore I/O path.
//!
//! Covers the three-layer read stack introduced with the pluggable codecs:
//! typed errors for every kind of codec-level damage (unknown codec byte,
//! corrupted compressed body, CRC-vs-codec corruption, single-byte damage
//! anywhere in a `col` body), mixed-codec manifests (per-segment codec
//! migration) streaming identically to the in-memory path, equality of every
//! `(codec, source, merge-mode)` combination — all three codecs × two
//! sources × two merge modes — the offline `migrate_manifest` rewrite, and
//! the on-disk size wins of the compressed codecs.

mod common;

use common::{random_dataset, temp_dir, write_manifest};
use ipfs_monitoring::core::{
    estimate_network_size, estimate_network_size_source, identify_data_wanters, run_attacks_source,
    track_node_wants, unify_and_flag, unify_and_flag_source, AttackTargets, PreprocessConfig,
};
use ipfs_monitoring::simnet::time::{SimDuration, SimTime};
use ipfs_monitoring::tracestore::{
    Codec, DatasetConfig, Manifest, ManifestReader, ReadOptions, SegmentConfig, SegmentError,
    SegmentMeta, SliceSource, TraceEntry, TraceReader, TraceSource, TraceWriter,
};
use ipfs_monitoring::types::varint;
use proptest::prelude::*;
use std::path::Path;

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|entry| entry.unwrap().metadata().unwrap().len())
        .sum()
}

/// Writes one single-monitor segment with the given codec and returns its
/// bytes (for hand-built mixed-codec manifests).
fn monitor_segment(label: &str, entries: &[TraceEntry], codec: Codec, chunk: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut writer = TraceWriter::new(
        &mut bytes,
        vec![label.to_string()],
        SegmentConfig {
            chunk_capacity: chunk,
            codec,
        },
    )
    .unwrap();
    for entry in entries {
        let mut local = entry.clone();
        local.monitor = 0;
        writer.append_owned(local).unwrap();
    }
    writer.finish().unwrap();
    bytes
}

/// Damages a written segment at the codec layer in three distinct ways and
/// checks that each surfaces its own *typed* error — never a panic, and
/// never a silent wrong answer.
#[test]
fn codec_damage_surfaces_typed_errors() {
    let dataset = random_dataset(41, 1, 300, 400);
    let bytes = monitor_segment("m0", &dataset.entries[0], Codec::Lz, 64);
    let reader = TraceReader::new(SliceSource::new(&bytes)).unwrap();
    let chunk = reader.chunks()[0];
    // Locate the payload inside the first chunk frame: skip the length
    // varint; the payload's first byte is the codec byte, then the body.
    let frame_start = chunk.offset as usize;
    let (payload_len, varint_len) = varint::decode(&bytes[frame_start..]).unwrap();
    let payload_start = frame_start + varint_len;
    let payload_end = payload_start + payload_len as usize;
    let crc_range = payload_end..payload_end + 4;
    assert_eq!(bytes[payload_start], Codec::Lz.byte(), "first chunk is lz");

    let reopen = |bytes: &[u8]| -> SegmentError {
        let reader = TraceReader::new(SliceSource::new(bytes)).unwrap();
        let mut stream = reader.stream_monitor(0);
        let _ = (&mut stream).count();
        stream.take_error().expect("damaged chunk must error")
    };
    let fix_crc = |bytes: &mut [u8]| {
        let crc = ipfs_monitoring::tracestore::crc::crc32(&bytes[payload_start..payload_end]);
        bytes[crc_range.clone()].copy_from_slice(&crc.to_le_bytes());
    };

    // (1) Unknown codec byte under a *valid* CRC: a reader from the future,
    // not damage — must be UnknownCodec.
    let mut unknown = bytes.clone();
    unknown[payload_start] = 9;
    fix_crc(&mut unknown);
    assert!(matches!(reopen(&unknown), SegmentError::UnknownCodec(9)));

    // (2) Corrupted compressed body under a valid CRC (e.g. a buggy encoder
    // or truncated-then-padded payload): the LZ decoder must reject with a
    // typed Corrupt error.
    let mut damaged = bytes.clone();
    for byte in &mut damaged[payload_end - 6..payload_end] {
        *byte = 0xff;
    }
    fix_crc(&mut damaged);
    assert!(matches!(reopen(&damaged), SegmentError::Corrupt(_)));

    // (3) CRC-vs-codec corruption: flipping the codec byte *without* fixing
    // the CRC must fail the checksum before the codec is even consulted.
    let mut flipped = bytes.clone();
    flipped[payload_start] = Codec::Raw.byte();
    assert!(matches!(
        reopen(&flipped),
        SegmentError::ChecksumMismatch { .. }
    ));
}

proptest! {
    /// Per-segment codec migration: a hand-assembled manifest whose segment
    /// chains alternate raw and compressed segments must stream exactly the
    /// in-memory reference, through every source and merge mode.
    #[test]
    fn mixed_codec_manifest_matches_in_memory(
        seed in 0u64..1_000_000,
        monitors in 1usize..3,
        per_monitor in 20usize..150,
        jitter in 0u64..1_500,
        rotate in 16usize..60,
        chunk in 4usize..32,
    ) {
        let dataset = random_dataset(seed, monitors, per_monitor, jitter);
        let dir = temp_dir(&format!("mixed-{seed}-{monitors}-{per_monitor}"));
        std::fs::create_dir_all(&dir).unwrap();

        // Build each monitor's chain by hand, alternating the codec per
        // rotation sequence — the migration scenario where a deployment
        // switches codecs mid-trace.
        let mut metas = Vec::new();
        for (monitor, entries) in dataset.entries.iter().enumerate() {
            for (sequence, window) in entries.chunks(rotate).enumerate() {
                let codec = Codec::all()[(monitor + sequence) % 3];
                let file_name = format!("seg-{monitor:03}-{sequence:05}.seg");
                let bytes = monitor_segment(&format!("m{monitor}"), window, codec, chunk);
                std::fs::write(dir.join(&file_name), &bytes).unwrap();
                metas.push(SegmentMeta {
                    file_name,
                    monitor,
                    sequence: sequence as u64,
                    entries: window.len() as u64,
                });
            }
        }
        let manifest = Manifest {
            monitor_labels: dataset.monitor_labels.clone(),
            segments: metas,
        };
        manifest.write_to(&dir).unwrap();

        let (trace, stats) = unify_and_flag(&dataset, PreprocessConfig::default());
        for mmap in [false, true] {
            for decode_ahead in [false, true] {
                let options = ReadOptions::default().mmap(mmap).decode_ahead(decode_ahead);
                let reader = ManifestReader::open_with(&dir, options).unwrap();
                let (streamed, streamed_stats) =
                    unify_and_flag_source(&reader, PreprocessConfig::default()).unwrap();
                prop_assert_eq!(
                    &streamed.entries, &trace.entries,
                    "mmap={} decode_ahead={}", mmap, decode_ahead
                );
                prop_assert_eq!(streamed_stats, stats);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every `(codec, mmap, decode_ahead)` combination over a writer-produced
    /// manifest yields the identical merged stream — the equality the
    /// experiment binaries assert per run, property-tested across shapes.
    #[test]
    fn all_codec_source_merge_modes_agree(
        seed in 0u64..1_000_000,
        per_monitor in 10usize..120,
        jitter in 0u64..1_200,
    ) {
        let dataset = random_dataset(seed, 2, per_monitor, jitter);
        let reference: Vec<TraceEntry> = dataset.merged_entries().collect();

        for codec in Codec::all() {
            let dir = temp_dir(&format!("modes-{seed}-{per_monitor}-{}", codec.name()));
            write_manifest(&dataset, &dir, DatasetConfig {
                segment: SegmentConfig { chunk_capacity: 16, codec },
                rotate_after_entries: (per_monitor as u64 / 3).max(1),
                ..DatasetConfig::default()
            });
            for mmap in [false, true] {
                for decode_ahead in [false, true] {
                    let options = ReadOptions::default().mmap(mmap).decode_ahead(decode_ahead);
                    let reader = ManifestReader::open_with(&dir, options).unwrap();
                    let mut stream = reader.merged_entries();
                    let merged: Vec<TraceEntry> = (&mut stream).collect();
                    prop_assert!(stream.take_error().is_none());
                    prop_assert_eq!(
                        &merged, &reference,
                        "codec={} mmap={} decode_ahead={}", codec.name(), mmap, decode_ahead
                    );
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Network-size estimation and the IDW/TNW attacks — the analyses the
/// experiment binaries run — must produce byte-identical reports whichever
/// codec, segment source, and merge mode the manifest is read with.
#[test]
fn netsize_and_attacks_agree_across_all_modes() {
    let dataset = random_dataset(97, 2, 600, 600);
    let (trace, _) = unify_and_flag(&dataset, PreprocessConfig::default());
    let target_cid = dataset.entries[0][0].cid.clone();
    let target_peer = dataset.entries[0][0].peer;
    let window_start = SimTime::ZERO;
    let window_end = SimTime::from_millis(1 << 22);
    let interval = SimDuration::from_hours(2);

    let reference_report = estimate_network_size(&dataset, window_start, window_end, interval);
    let reference_idw = identify_data_wanters(&trace, &target_cid);
    let reference_tnw = track_node_wants(&trace, &target_peer);

    for codec in Codec::all() {
        let dir = temp_dir(&format!("analyses-{}", codec.name()));
        write_manifest(
            &dataset,
            &dir,
            DatasetConfig {
                segment: SegmentConfig {
                    chunk_capacity: 32,
                    codec,
                },
                rotate_after_entries: 200,
                ..DatasetConfig::default()
            },
        );
        for mmap in [false, true] {
            for decode_ahead in [false, true] {
                let options = ReadOptions::default().mmap(mmap).decode_ahead(decode_ahead);
                let reader = ManifestReader::open_with(&dir, options).unwrap();
                let tag = format!(
                    "codec={} mmap={mmap} decode_ahead={decode_ahead}",
                    codec.name()
                );

                let report =
                    estimate_network_size_source(&reader, window_start, window_end, interval)
                        .unwrap();
                assert_eq!(
                    serde_json::to_string(&report).unwrap(),
                    serde_json::to_string(&reference_report).unwrap(),
                    "netsize differs: {tag}"
                );

                let suite = run_attacks_source(
                    &reader,
                    PreprocessConfig::default(),
                    &AttackTargets {
                        idw_cids: vec![target_cid.clone()],
                        tnw_peers: vec![target_peer],
                        tpi_probes: Vec::new(),
                    },
                    None,
                )
                .unwrap();
                assert_eq!(suite.idw[&target_cid], reference_idw, "IDW differs: {tag}");
                assert_eq!(suite.tnw[&target_peer], reference_tnw, "TNW differs: {tag}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The compressed codec must make the dataset strictly smaller on disk for
/// dictionary-heavy traces (the realistic shape: few distinct peers/CIDs per
/// chunk, repetitive index columns).
#[test]
fn col_manifest_is_strictly_smaller_than_lz_on_disk() {
    let dataset = random_dataset(11, 2, 4_000, 800);
    let lz_dir = temp_dir("size2-lz");
    let col_dir = temp_dir("size2-col");
    for (dir, codec) in [(&lz_dir, Codec::Lz), (&col_dir, Codec::Col)] {
        write_manifest(
            &dataset,
            dir,
            DatasetConfig {
                segment: SegmentConfig {
                    chunk_capacity: 1024,
                    codec,
                },
                rotate_after_entries: 2_000,
                ..DatasetConfig::default()
            },
        );
    }
    let lz_bytes = dir_bytes(&lz_dir);
    let col_bytes = dir_bytes(&col_dir);
    assert!(
        col_bytes < lz_bytes,
        "col manifest not smaller: {col_bytes} vs {lz_bytes} lz"
    );

    // And it still reads back identically.
    let reader = ManifestReader::open(&col_dir).unwrap();
    let (streamed, _) = unify_and_flag_source(&reader, PreprocessConfig::default()).unwrap();
    let (trace, _) = unify_and_flag(&dataset, PreprocessConfig::default());
    assert_eq!(streamed.entries, trace.entries);

    std::fs::remove_dir_all(&lz_dir).ok();
    std::fs::remove_dir_all(&col_dir).ok();
}

/// Exhaustive single-byte damage sweep over a `col` chunk body, through the
/// full reader stack: every flip must either surface a *typed* error
/// (truncated bit-pack runs, out-of-range dictionary indexes, RLE overruns —
/// all `Corrupt` — or an unknown codec byte) or decode cleanly into
/// different-but-valid entries (flips inside dictionary bytes). Never a
/// panic, never a checksum-skipping shortcut.
#[test]
fn col_body_damage_sweep_never_panics() {
    let dataset = random_dataset(43, 1, 400, 400);
    let bytes = monitor_segment("m0", &dataset.entries[0], Codec::Col, 64);
    let reader = TraceReader::new(SliceSource::new(&bytes)).unwrap();
    let chunk = reader.chunks()[0];
    let frame_start = chunk.offset as usize;
    let (payload_len, varint_len) = varint::decode(&bytes[frame_start..]).unwrap();
    let payload_start = frame_start + varint_len;
    let payload_end = payload_start + payload_len as usize;
    let crc_range = payload_end..payload_end + 4;
    assert_eq!(
        bytes[payload_start],
        Codec::Col.byte(),
        "first chunk is col"
    );

    let mut typed_errors = 0usize;
    let mut clean_decodes = 0usize;
    for pos in payload_start + 1..payload_end {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0xA5;
        let crc = ipfs_monitoring::tracestore::crc::crc32(&damaged[payload_start..payload_end]);
        damaged[crc_range.clone()].copy_from_slice(&crc.to_le_bytes());

        let reader = TraceReader::new(SliceSource::new(&damaged)).unwrap();
        let mut stream = reader.stream_monitor(0);
        let _ = (&mut stream).count();
        match stream.take_error() {
            Some(SegmentError::Corrupt(_)) | Some(SegmentError::UnknownCodec(_)) => {
                typed_errors += 1;
            }
            Some(other) => panic!("unexpected error type at body offset {pos}: {other:?}"),
            None => clean_decodes += 1,
        }
    }
    // A healthy sweep hits both outcomes: structural bytes (widths, counts,
    // run lengths, indexes) produce typed errors; dictionary payload bytes
    // decode to different entries.
    assert!(typed_errors > 0, "no flip surfaced a typed error");
    assert!(
        clean_decodes > 0,
        "no flip landed in plain dictionary bytes"
    );
}

/// Migration round-trip: a hand-assembled manifest whose segments cycle all
/// three codecs is rewritten to all-`col` — the merged stream must be
/// byte-identical before and after, already-`col` segments are skipped, a
/// stale temp file from a crashed previous run is swept, and a second run is
/// a no-op.
#[test]
fn migrate_rewrites_mixed_manifest_to_col() {
    use ipfs_monitoring::tracestore::{migrate_manifest, MIGRATE_TMP_SUFFIX};

    let dataset = random_dataset(59, 2, 400, 600);
    let dir = temp_dir("migrate-mixed");
    std::fs::create_dir_all(&dir).unwrap();
    let mut metas = Vec::new();
    let mut col_segments = 0usize;
    for (monitor, entries) in dataset.entries.iter().enumerate() {
        for (sequence, window) in entries.chunks(120).enumerate() {
            let codec = Codec::all()[(monitor + sequence) % 3];
            if codec == Codec::Col {
                col_segments += 1;
            }
            let file_name = format!("seg-{monitor:03}-{sequence:05}.seg");
            let bytes = monitor_segment(&format!("m{monitor}"), window, codec, 32);
            std::fs::write(dir.join(&file_name), &bytes).unwrap();
            metas.push(SegmentMeta {
                file_name,
                monitor,
                sequence: sequence as u64,
                entries: window.len() as u64,
            });
        }
    }
    let manifest = Manifest {
        monitor_labels: dataset.monitor_labels.clone(),
        segments: metas,
    };
    manifest.write_to(&dir).unwrap();
    // A stale temp file from a simulated crashed migration must be swept and
    // must not confuse the rewrite.
    let stale = dir.join(format!("seg-000-00000.seg{MIGRATE_TMP_SUFFIX}"));
    std::fs::write(&stale, b"half-written garbage").unwrap();

    let reference: Vec<TraceEntry> = {
        let reader = ManifestReader::open(&dir).unwrap();
        let mut stream = reader.merged_entries();
        let entries: Vec<TraceEntry> = (&mut stream).collect();
        assert!(stream.take_error().is_none());
        entries
    };

    let report = migrate_manifest(&dir, Codec::Col).unwrap();
    assert!(!stale.exists(), "stale temp file must be swept");
    assert_eq!(report.segments_skipped, col_segments, "col segments skip");
    assert_eq!(
        report.segments_rewritten,
        report.segments_total - col_segments
    );

    let reader = ManifestReader::open(&dir).unwrap();
    let mut stream = reader.merged_entries();
    let migrated: Vec<TraceEntry> = (&mut stream).collect();
    assert!(stream.take_error().is_none());
    assert_eq!(migrated, reference, "stream must survive migration intact");

    // Second run: everything already col, nothing rewritten, size unchanged.
    let before = dir_bytes(&dir);
    let second = migrate_manifest(&dir, Codec::Col).unwrap();
    assert_eq!(second.segments_rewritten, 0);
    assert_eq!(second.segments_skipped, report.segments_total);
    assert_eq!(dir_bytes(&dir), before);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lz_manifest_is_strictly_smaller_on_disk() {
    let dataset = random_dataset(7, 2, 4_000, 800);
    let raw_dir = temp_dir("size-raw");
    let lz_dir = temp_dir("size-lz");
    for (dir, codec) in [(&raw_dir, Codec::Raw), (&lz_dir, Codec::Lz)] {
        write_manifest(
            &dataset,
            dir,
            DatasetConfig {
                segment: SegmentConfig {
                    chunk_capacity: 1024,
                    codec,
                },
                rotate_after_entries: 2_000,
                ..DatasetConfig::default()
            },
        );
    }
    let raw_bytes = dir_bytes(&raw_dir);
    let lz_bytes = dir_bytes(&lz_dir);
    assert!(
        lz_bytes < raw_bytes,
        "lz manifest not smaller: {lz_bytes} vs {raw_bytes} raw"
    );

    // And it still reads back identically.
    let reader = ManifestReader::open(&lz_dir).unwrap();
    let (streamed, _) = unify_and_flag_source(&reader, PreprocessConfig::default()).unwrap();
    let (trace, _) = unify_and_flag(&dataset, PreprocessConfig::default());
    assert_eq!(streamed.entries, trace.entries);

    std::fs::remove_dir_all(&raw_dir).ok();
    std::fs::remove_dir_all(&lz_dir).ok();
}
