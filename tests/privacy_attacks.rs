//! Integration tests for the privacy attacks of Sec. VI, evaluated against
//! simulation ground truth.

use ipfs_monitoring::core::{
    gateway_nodes_by_operator, identify_data_wanters, test_past_interest, track_node_wants,
    unify_and_flag, GatewayProber, MonitorCollector, PreprocessConfig, TpiOutcome,
};
use ipfs_monitoring::node::Network;
use ipfs_monitoring::simnet::rng::SimRng;
use ipfs_monitoring::simnet::time::{SimDuration, SimTime};
use ipfs_monitoring::workload::{build_scenario, ScenarioConfig};
use std::collections::{HashMap, HashSet};

fn build_network(seed: u64, nodes: usize) -> Network {
    let mut config = ScenarioConfig::analysis_week(seed, nodes);
    config.horizon = SimDuration::from_days(1);
    config.workload.mean_node_requests_per_hour = 1.5;
    config.workload.gateway_requests_per_hour = 300.0;
    Network::new(build_scenario(&config))
}

#[test]
fn gateway_probing_discovers_only_true_gateway_nodes() {
    let mut network = build_network(700, 400);
    let mut prober = GatewayProber::new();
    let mut rng = SimRng::new(1);
    // Two probing rounds over all operators.
    prober.probe_all_operators(
        &mut network,
        0,
        SimTime::ZERO + SimDuration::from_hours(4),
        60,
        &mut rng,
    );
    prober.probe_all_operators(
        &mut network,
        0,
        SimTime::ZERO + SimDuration::from_hours(12),
        60,
        &mut rng,
    );

    let truth = network.gateway_ground_truth();
    let mut collector = MonitorCollector::us_de();
    network.run(&mut collector);
    let (trace, _) = unify_and_flag(&collector.into_dataset(), PreprocessConfig::default());

    let results = prober.evaluate(&trace);
    let discovered = gateway_nodes_by_operator(&results);

    let all_truth: HashSet<_> = truth.values().flatten().copied().collect();
    let mut discovered_total = 0;
    for (operator, peers) in &discovered {
        for peer in peers {
            assert!(
                all_truth.contains(peer),
                "no false positives: {peer} attributed to {operator}"
            );
        }
        discovered_total += peers.len();
    }
    // Functional operators must be identified by at least one probe.
    let functional: Vec<_> = network
        .scenario()
        .operators
        .iter()
        .filter(|op| op.http_functional)
        .map(|op| op.name.clone())
        .collect();
    for name in functional {
        assert!(
            discovered
                .get(&name)
                .map(|s| !s.is_empty())
                .unwrap_or(false),
            "functional gateway {name} was not identified"
        );
    }
    assert!(discovered_total >= 2);
}

#[test]
fn idw_and_tnw_match_ground_truth_requests() {
    let mut network = build_network(701, 300);
    let scenario = network.scenario().clone();
    let mut collector = MonitorCollector::us_de();
    network.run(&mut collector);
    let (trace, _) = unify_and_flag(&collector.into_dataset(), PreprocessConfig::default());

    // Ground truth request sets.
    let mut truth_by_content: HashMap<usize, HashSet<_>> = HashMap::new();
    for request in &scenario.requests {
        truth_by_content
            .entry(request.content)
            .or_default()
            .insert(network.peer_id(request.node));
    }

    // Gateway nodes also issue Bitswap requests (driven by the HTTP
    // workload, not by scenario.requests), so they are legitimate wanters the
    // node-level ground truth does not cover.
    let gateway_peers: HashSet<_> = network
        .gateway_ground_truth()
        .values()
        .flatten()
        .copied()
        .collect();

    // IDW precision: every identified wanter of the busiest CID is either a
    // ground-truth requester or a gateway node relaying HTTP requests.
    let (&content, truth_peers) = truth_by_content
        .iter()
        .max_by_key(|(_, peers)| peers.len())
        .unwrap();
    let cid = network.content_root(content).clone();
    let wanters = identify_data_wanters(&trace, &cid);
    assert!(!wanters.is_empty(), "busiest CID should be observed");
    for wanter in &wanters {
        assert!(
            truth_peers.contains(&wanter.peer) || gateway_peers.contains(&wanter.peer),
            "IDW must not accuse peers that never requested the CID"
        );
    }

    // TNW: every CID in the profile of an observed (non-gateway) peer was
    // indeed requested by that node per ground truth.
    let target = wanters
        .iter()
        .map(|w| w.peer)
        .find(|p| !gateway_peers.contains(p))
        .expect("at least one homegrown requester");
    let node = network.node_of_peer(&target).unwrap();
    let requested_contents: HashSet<_> = scenario
        .requests
        .iter()
        .filter(|r| r.node == node)
        .map(|r| network.content_root(r.content).clone())
        .collect();
    let profile = track_node_wants(&trace, &target);
    assert!(profile.distinct_cids() > 0);
    for cid in profile.wants.keys() {
        assert!(
            requested_contents.contains(cid),
            "TNW must only contain CIDs the node actually requested"
        );
    }
}

#[test]
fn tpi_probe_agrees_with_cache_state() {
    let mut network = build_network(702, 200);
    let scenario = network.scenario().clone();
    let mut collector = MonitorCollector::us_de();
    network.run(&mut collector);

    let mut probes = 0;
    let mut positives = 0;
    for request in scenario.requests.iter().take(300) {
        let cid = network.content_root(request.content);
        let outcome = test_past_interest(&network, request.node, cid);
        let cached = network.node_has_block(request.node, cid);
        assert_eq!(outcome == TpiOutcome::CachedRecently, cached);
        probes += 1;
        if cached {
            positives += 1;
        }
    }
    assert!(probes > 0);
    assert!(positives > 0, "some requested content must end up cached");

    // Content that nobody requested from an idle node is not cached.
    let unrequested = network.content_root(0);
    let idle_node = scenario.requests.iter().map(|r| r.node).max().unwrap_or(0);
    let _ = test_past_interest(&network, idle_node, unrequested);
}
