//! Integration tests of the network-size estimators and the crawler
//! comparison under controlled conditions.

use ipfs_monitoring::analysis::qq_uniform_deviation;
use ipfs_monitoring::core::{coverage, estimate_network_size, peer_id_positions, MonitorCollector};
use ipfs_monitoring::kad::Crawler;
use ipfs_monitoring::node::Network;
use ipfs_monitoring::simnet::churn::ChurnModel;
use ipfs_monitoring::simnet::time::{SimDuration, SimTime};
use ipfs_monitoring::workload::{build_scenario, ScenarioConfig};

fn stable_network(seed: u64, nodes: usize, attach: f64) -> (Network, MonitorCollector) {
    let mut config = ScenarioConfig::analysis_week(seed, nodes);
    config.horizon = SimDuration::from_hours(12);
    config.population.churn = ChurnModel::always_online();
    config.workload.mean_node_requests_per_hour = 0.2;
    for monitor in &mut config.monitors {
        monitor.attach_probability = attach;
    }
    let mut network = Network::new(build_scenario(&config));
    let mut collector = MonitorCollector::us_de();
    network.run(&mut collector);
    (network, collector)
}

#[test]
fn estimators_recover_population_without_churn() {
    let n = 2_000;
    let (network, collector) = stable_network(800, n, 0.6);
    let dataset = collector.into_dataset();
    let report = estimate_network_size(
        &dataset,
        SimTime::ZERO + SimDuration::from_hours(6),
        SimTime::ZERO + SimDuration::from_hours(6),
        SimDuration::from_hours(1),
    );
    let truth = network.node_count() as f64;
    let capture = report.capture_recapture.unwrap().mean;
    let committee = report.committee.unwrap().mean;
    assert!(
        (capture - truth).abs() / truth < 0.10,
        "capture {capture} vs {truth}"
    );
    assert!(
        (committee - truth).abs() / truth < 0.10,
        "committee {committee} vs {truth}"
    );

    let cov = coverage(&report, truth);
    assert!((cov.per_monitor[0] - 0.6).abs() < 0.06);
    assert!((cov.joint - (1.0 - 0.4 * 0.4)).abs() < 0.06);
}

#[test]
fn connected_peer_ids_are_uniform_in_the_key_space() {
    let (_network, collector) = stable_network(801, 3_000, 0.7);
    let dataset = collector.into_dataset();
    let positions = peer_id_positions(&dataset, 0, SimTime::ZERO + SimDuration::from_hours(6));
    assert!(positions.len() > 1_000);
    let deviation = qq_uniform_deviation(&positions, 101);
    assert!(deviation < 0.05, "Fig. 3 uniformity: deviation {deviation}");
}

#[test]
fn crawler_sees_servers_but_not_clients_while_monitors_see_both() {
    let mut config = ScenarioConfig::analysis_week(802, 1_000);
    config.horizon = SimDuration::from_hours(12);
    config.population.churn = ChurnModel::always_online();
    config.population.client_fraction = 0.5;
    config.workload.mean_node_requests_per_hour = 0.5;
    let mut network = Network::new(build_scenario(&config));
    let mut collector = MonitorCollector::us_de();
    network.run(&mut collector);
    let dataset = collector.into_dataset();

    let at = SimTime::ZERO + SimDuration::from_hours(6);
    let crawl = Crawler::new().crawl(
        &network.dht_view_at(at),
        &network.online_server_peers(at, 5),
    );
    let monitor_uniques: std::collections::HashSet<_> = (0..2)
        .flat_map(|m| dataset.peers_connected_to(m).into_iter())
        .collect();

    let servers = network
        .scenario()
        .nodes
        .iter()
        .filter(|n| n.config.dht_mode.is_server())
        .count();
    assert!(
        crawl.discovered_count() <= servers,
        "crawler cannot see clients"
    );
    assert!(
        monitor_uniques.len() > crawl.discovered_count(),
        "monitors ({}) should see more peers than the crawler ({})",
        monitor_uniques.len(),
        crawl.discovered_count()
    );
}
