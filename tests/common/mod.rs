//! Shared scenario-building and dataset-spilling helpers for the
//! integration suites. Each test binary compiles this module separately
//! (`mod common;`), so not every binary uses every helper.
#![allow(dead_code)]

use ipfs_monitoring::bitswap::RequestType;
use ipfs_monitoring::core::MonitorCollector;
use ipfs_monitoring::node::Network;
use ipfs_monitoring::simnet::time::SimTime;
use ipfs_monitoring::tracestore::{
    ConnectionRecord, DatasetConfig, DatasetWriter, EntryFlags, MonitoringDataset, SegmentConfig,
    TraceEntry,
};
use ipfs_monitoring::types::{Cid, Country, Multiaddr, Multicodec, PeerId, Transport};
use ipfs_monitoring::workload::{build_scenario, ScenarioConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

/// A per-process temp path for the given tag. Tags must be unique within a
/// test binary (the harness runs tests of one binary concurrently in one
/// process); the PID keeps binaries from colliding with each other.
pub fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("it-{tag}-{}", std::process::id()))
}

/// [`temp_dir`] plus remove-and-recreate, for suites whose helpers require
/// the directory to exist (e.g. `recover_dataset` reads it immediately).
pub fn fresh_dir(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Random multi-monitor dataset with bounded per-monitor arrival disorder:
/// low-cardinality peers/CIDs (so dictionaries and index columns dominate —
/// the compressible case), mixed multicodecs/transports/countries (so the
/// share analyses have variety), and a handful of connection records.
pub fn random_dataset(
    seed: u64,
    monitors: usize,
    per_monitor: usize,
    jitter_ms: u64,
) -> MonitoringDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let countries = [Country::Us, Country::De, Country::Nl, Country::Fr];
    let transports = [Transport::Tcp, Transport::Quic, Transport::WebSocket];
    let types = [
        RequestType::WantHave,
        RequestType::WantBlock,
        RequestType::Cancel,
    ];
    let mut dataset = MonitoringDataset::new((0..monitors).map(|m| format!("m{m}")).collect());
    for monitor in 0..monitors {
        let mut clock: u64 = 0;
        for _ in 0..per_monitor {
            clock += rng.gen_range(0u64..2_000);
            let timestamp = clock.saturating_sub(rng.gen_range(0u64..=jitter_ms.max(1)));
            dataset.entries[monitor].push(TraceEntry {
                timestamp: SimTime::from_millis(timestamp),
                peer: PeerId::derived(29, rng.gen_range(0u64..16)),
                address: Multiaddr::new(
                    rng.gen_range(0u32..64),
                    4001,
                    transports[rng.gen_range(0usize..transports.len())],
                    countries[rng.gen_range(0usize..countries.len())],
                ),
                request_type: types[rng.gen_range(0usize..types.len())],
                cid: Cid::new_v1(
                    if rng.gen_bool(0.3) {
                        Multicodec::DagProtobuf
                    } else {
                        Multicodec::Raw
                    },
                    &[rng.gen_range(0u8..24)],
                ),
                monitor,
                flags: EntryFlags::default(),
            });
        }
    }
    for _ in 0..rng.gen_range(1usize..6) {
        let connected_at = rng.gen_range(0u64..100_000);
        dataset.connections.push(ConnectionRecord {
            monitor: rng.gen_range(0usize..monitors),
            peer: PeerId::derived(29, rng.gen_range(0u64..16)),
            address: Multiaddr::new(rng.gen::<u32>(), 4001, Transport::Tcp, Country::Us),
            connected_at: SimTime::from_millis(connected_at),
            disconnected_at: rng
                .gen_bool(0.5)
                .then(|| SimTime::from_millis(connected_at + rng.gen_range(0u64..50_000))),
        });
    }
    dataset
}

/// Spills a dataset (entries and connections) into a manifest directory
/// under the given configuration.
pub fn write_manifest(dataset: &MonitoringDataset, dir: &Path, config: DatasetConfig) {
    let mut writer = DatasetWriter::create(dir, dataset.monitor_labels.clone(), config).unwrap();
    for per_monitor in &dataset.entries {
        for entry in per_monitor {
            writer.append(entry).unwrap();
        }
    }
    for connection in &dataset.connections {
        writer.record_connection(connection.clone()).unwrap();
    }
    writer.finish().unwrap();
}

/// [`write_manifest`] with just the rotation cadence and chunk capacity
/// picked — the layout knobs the streaming/parallel suites sweep.
pub fn write_manifest_rotated(dataset: &MonitoringDataset, dir: &Path, rotate: u64, chunk: usize) {
    write_manifest(
        dataset,
        dir,
        DatasetConfig {
            rotate_after_entries: rotate,
            segment: SegmentConfig {
                chunk_capacity: chunk,
                ..SegmentConfig::default()
            },
            ..DatasetConfig::default()
        },
    );
}

/// The standard small scenario at an explicit population.
pub fn scenario_config(seed: u64, nodes: usize) -> ScenarioConfig {
    let mut config = ScenarioConfig::small_test(seed);
    config.population.nodes = nodes;
    config
}

/// Runs the simulation pipeline end to end and returns the raw per-monitor
/// dataset — the realistic (simulator-shaped) counterpart of
/// [`random_dataset`].
pub fn simulated_dataset(seed: u64, nodes: usize) -> MonitoringDataset {
    let config = scenario_config(seed, nodes);
    let labels: Vec<String> = config.monitors.iter().map(|m| m.label.clone()).collect();
    let mut collector = MonitorCollector::new(labels);
    Network::new(build_scenario(&config)).run(&mut collector);
    collector.into_dataset()
}
