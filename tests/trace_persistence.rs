//! Persistence and stability of the trace formats.

use ipfs_monitoring::core::{
    unify_and_flag, MonitorCollector, MonitoringDataset, PreprocessConfig, UnifiedTrace,
};
use ipfs_monitoring::node::Network;
use ipfs_monitoring::simnet::time::SimDuration;
use ipfs_monitoring::workload::{build_scenario, ScenarioConfig};

fn small_dataset(seed: u64) -> MonitoringDataset {
    let mut config = ScenarioConfig::small_test(seed);
    config.horizon = SimDuration::from_hours(2);
    let mut network = Network::new(build_scenario(&config));
    let mut collector = MonitorCollector::us_de();
    network.run(&mut collector);
    collector.into_dataset()
}

#[test]
fn dataset_json_roundtrip_preserves_everything() {
    let dataset = small_dataset(600);
    assert!(dataset.total_entries() > 0);
    let json = dataset.to_json().unwrap();
    let parsed = MonitoringDataset::from_json(&json).unwrap();
    assert_eq!(parsed.monitor_labels, dataset.monitor_labels);
    assert_eq!(parsed.entries, dataset.entries);
    assert_eq!(parsed.connections, dataset.connections);
}

#[test]
fn unified_trace_json_roundtrip_preserves_flags() {
    let dataset = small_dataset(601);
    let (trace, stats) = unify_and_flag(&dataset, PreprocessConfig::default());
    let parsed = UnifiedTrace::from_json(&trace.to_json().unwrap()).unwrap();
    assert_eq!(parsed.entries, trace.entries);
    assert_eq!(parsed.primary_entries().count(), stats.primary);
}

#[test]
fn preprocessing_is_idempotent_on_reloaded_data() {
    let dataset = small_dataset(602);
    let json = dataset.to_json().unwrap();
    let reloaded = MonitoringDataset::from_json(&json).unwrap();
    let (a, sa) = unify_and_flag(&dataset, PreprocessConfig::default());
    let (b, sb) = unify_and_flag(&reloaded, PreprocessConfig::default());
    assert_eq!(a.entries, b.entries);
    assert_eq!(sa, sb);
}
